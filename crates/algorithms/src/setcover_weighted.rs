//! Weighted approximate set cover — the extension the paper notes
//! ("we describe our algorithm for unweighted set cover, and note that it
//! can be easily modified for the weighted case", §4.3).
//!
//! Following Blelloch–Simhadri–Tangwongsan, sets are bucketed by
//! **normalized cost** `c(S) / D[S]` (cost per still-uncovered element)
//! into `⌊log_{1+ε}·⌋` buckets and processed from cheapest to costliest —
//! an *increasing* bucket traversal, the mirror image of the unweighted
//! decreasing one. Covering elements only shrinks `D`, so normalized cost
//! only grows, satisfying the structure's monotonicity contract. An active
//! set is chosen when the elements it wins keep its realized cost-per-won
//! element within the current bucket's range.

use julienne::bucket::{BucketDest, BucketId, BucketsBuilder, Order, NULL_BKT};
use julienne_graph::generators::SetCoverInstance;
use julienne_graph::packed::PackedGraph;
use julienne_graph::VertexId;
use julienne_ligra::edge_map_filter::{
    edge_map_filter_count, edge_map_filter_pack, edge_map_packed,
};
use julienne_primitives::atomics::write_min_u32;
use julienne_primitives::bitset::AtomicBitSet;
use julienne_primitives::filter::filter_map;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

const IN_COVER: u32 = u32::MAX;
const UNRESERVED: u32 = u32::MAX;

/// Result of a weighted set-cover computation.
#[derive(Clone, Debug)]
pub struct WeightedCoverResult {
    /// Chosen set ids.
    pub cover: Vec<VertexId>,
    /// Total cost of the chosen sets.
    pub cost: f64,
    /// For each element, the chosen set covering it.
    pub assignment: Vec<u32>,
    /// Bucket rounds executed.
    pub rounds: u64,
}

struct NormalizedBuckets {
    inv_log1p_eps: f64,
    /// Key offset so the cheapest initial normalized cost maps to bucket 0.
    offset: i64,
}

impl NormalizedBuckets {
    fn new(costs: &[f64], init_deg: &[u32], eps: f64) -> Self {
        let inv = 1.0 / (1.0 + eps).ln();
        let offset = costs
            .iter()
            .zip(init_deg)
            .filter(|&(_, &d)| d > 0)
            .map(|(&c, &d)| ((c / d as f64).ln() * inv).floor() as i64)
            .min()
            .unwrap_or(0);
        NormalizedBuckets {
            inv_log1p_eps: inv,
            offset,
        }
    }

    /// Bucket of a set with cost `c` and `d` uncovered elements.
    fn bucket(&self, c: f64, d: u32) -> BucketId {
        if d == 0 || d == IN_COVER {
            return NULL_BKT;
        }
        let raw = ((c / d as f64).ln() * self.inv_log1p_eps).floor() as i64 - self.offset;
        debug_assert!(raw >= 0, "normalized cost fell below the initial minimum");
        raw.max(0) as BucketId
    }

    /// Upper edge of bucket `b` in normalized-cost space.
    fn upper(&self, b: BucketId, eps: f64) -> f64 {
        (1.0 + eps).powi((b as i64 + self.offset + 1) as i32)
    }
}

/// Weighted approximate set cover: `costs[s] > 0` is the cost of set `s`.
pub fn set_cover_weighted_julienne(
    inst: &SetCoverInstance,
    costs: &[f64],
    eps: f64,
) -> WeightedCoverResult {
    assert!(eps > 0.0);
    assert_eq!(costs.len(), inst.num_sets);
    assert!(costs.iter().all(|&c| c > 0.0), "costs must be positive");
    let num_sets = inst.num_sets;
    let num_elements = inst.num_elements;

    let mut packed = PackedGraph::from_csr(&inst.graph);
    let el: Vec<AtomicU32> = (0..num_elements)
        .map(|_| AtomicU32::new(UNRESERVED))
        .collect();
    let covered = AtomicBitSet::new(num_elements);
    let d: Vec<AtomicU32> = (0..num_sets)
        .map(|s| AtomicU32::new(inst.graph.degree(s as VertexId) as u32))
        .collect();
    let init_deg: Vec<u32> = (0..num_sets)
        .map(|s| inst.graph.degree(s as VertexId) as u32)
        .collect();
    let nb = NormalizedBuckets::new(costs, &init_deg, eps);

    let elem_idx = |e: VertexId| (e as usize) - num_sets;
    let d_fun = |s: u32| nb.bucket(costs[s as usize], d[s as usize].load(Ordering::SeqCst));
    let mut buckets = BucketsBuilder::new(num_sets, d_fun, Order::Increasing).build();

    let mut rounds = 0u64;
    while let Some((b, sets)) = buckets.next_bucket() {
        rounds += 1;

        // Refresh degrees (pack covered elements) and keep the sets whose
        // normalized cost is still inside bucket b active.
        let sets_d = edge_map_filter_pack(&mut packed, &sets, |_s, e| !covered.get(elem_idx(e)));
        sets_d.entries().par_iter().for_each(|&(s, new_deg)| {
            d[s as usize].store(new_deg, Ordering::SeqCst);
        });
        let active: Vec<VertexId> = filter_map(sets_d.entries(), |&(s, deg)| {
            (nb.bucket(costs[s as usize], deg) == b).then_some(s)
        });

        if !active.is_empty() {
            // MaNIS step: reserve uncovered elements (smallest set id wins).
            edge_map_packed(
                &packed,
                &active,
                |s, e| {
                    write_min_u32(&el[elem_idx(e)], s);
                },
                |e| !covered.get(elem_idx(e)),
            );
            let counts = edge_map_filter_count(&packed, &active, |s, e| {
                el[elem_idx(e)].load(Ordering::SeqCst) == s
            });
            // Chosen iff cost per won element stays within this bucket.
            let upper = nb.upper(b, eps);
            counts.entries().par_iter().for_each(|&(s, won)| {
                if won > 0 && costs[s as usize] / won as f64 <= upper {
                    d[s as usize].store(IN_COVER, Ordering::SeqCst);
                }
            });
            edge_map_packed(
                &packed,
                &active,
                |s, e| {
                    let ei = elem_idx(e);
                    if el[ei].load(Ordering::SeqCst) == s {
                        if d[s as usize].load(Ordering::SeqCst) == IN_COVER {
                            covered.set(ei);
                        } else {
                            el[ei].store(UNRESERVED, Ordering::SeqCst);
                        }
                    }
                },
                |_| true,
            );
        }

        // Rebucket the extracted sets that were not chosen.
        let rebucket: Vec<(u32, BucketDest)> = filter_map(&sets, |&s| {
            let deg = d[s as usize].load(Ordering::SeqCst);
            if deg == IN_COVER {
                return None;
            }
            Some((s, buckets.get_bucket(b, nb.bucket(costs[s as usize], deg))))
        });
        buckets.update_buckets(&rebucket);
    }

    let cover: Vec<VertexId> = filter_map(&(0..num_sets as u32).collect::<Vec<_>>(), |&s| {
        (d[s as usize].load(Ordering::SeqCst) == IN_COVER).then_some(s)
    });
    let cost = cover.iter().map(|&s| costs[s as usize]).sum();
    WeightedCoverResult {
        cover,
        cost,
        assignment: el.into_iter().map(AtomicU32::into_inner).collect(),
        rounds,
    }
}

/// Sequential weighted greedy (Chvátal): repeatedly choose the set with
/// the smallest cost per uncovered element. Hₙ-approximate. Lazy-heap
/// implementation: normalized costs only increase, so a stale pop is
/// re-keyed.
pub fn set_cover_weighted_greedy_seq(
    inst: &SetCoverInstance,
    costs: &[f64],
) -> WeightedCoverResult {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    #[derive(PartialEq)]
    struct Key(f64);
    impl Eq for Key {}
    impl PartialOrd for Key {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Key {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.0
                .partial_cmp(&other.0)
                .unwrap_or(std::cmp::Ordering::Equal)
        }
    }

    let num_sets = inst.num_sets;
    let num_elements = inst.num_elements;
    let mut covered = vec![false; num_elements];
    let mut assignment = vec![u32::MAX; num_elements];
    let mut cover = Vec::new();
    let mut cost_total = 0.0;
    let mut left = num_elements;

    let mut heap: BinaryHeap<(Reverse<Key>, u32, u32)> = (0..num_sets as u32)
        .filter(|&s| inst.graph.degree(s) > 0)
        .map(|s| {
            let deg = inst.graph.degree(s) as u32;
            (Reverse(Key(costs[s as usize] / deg as f64)), s, deg)
        })
        .collect();

    while left > 0 {
        let (Reverse(Key(_ratio)), s, claimed) =
            heap.pop().expect("uncovered elements but heap empty");
        let actual = inst
            .graph
            .neighbors(s)
            .iter()
            .filter(|&&e| !covered[(e as usize) - num_sets])
            .count() as u32;
        if actual == 0 {
            continue;
        }
        if actual < claimed {
            heap.push((Reverse(Key(costs[s as usize] / actual as f64)), s, actual));
            continue;
        }
        cover.push(s);
        cost_total += costs[s as usize];
        for &e in inst.graph.neighbors(s) {
            let ei = (e as usize) - num_sets;
            if !covered[ei] {
                covered[ei] = true;
                assignment[ei] = s;
                left -= 1;
            }
        }
    }

    WeightedCoverResult {
        cover,
        cost: cost_total,
        assignment,
        rounds: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setcover::verify_cover;
    use julienne_graph::generators::set_cover_instance;
    use julienne_primitives::rng::SplitMix64;

    fn random_costs(n: usize, seed: u64, lo: f64, hi: f64) -> Vec<f64> {
        let mut rng = SplitMix64::new(seed);
        (0..n)
            .map(|_| lo + (hi - lo) * (rng.next_u64() as f64 / u64::MAX as f64))
            .collect()
    }

    #[test]
    fn weighted_cover_is_valid() {
        for seed in 0..3 {
            let inst = set_cover_instance(60, 3_000, 3, seed);
            let costs = random_costs(60, seed + 1, 1.0, 20.0);
            let r = set_cover_weighted_julienne(&inst, &costs, 0.05);
            assert!(verify_cover(&inst, &r.cover), "seed {seed}");
            let check: f64 = r.cover.iter().map(|&s| costs[s as usize]).sum();
            assert!((check - r.cost).abs() < 1e-9);
        }
    }

    #[test]
    fn unit_costs_match_unweighted_validity() {
        let inst = set_cover_instance(100, 5_000, 3, 7);
        let costs = vec![1.0; 100];
        let w = set_cover_weighted_julienne(&inst, &costs, 0.01);
        assert!(verify_cover(&inst, &w.cover));
        let g = set_cover_weighted_greedy_seq(&inst, &costs);
        assert!(verify_cover(&inst, &g.cover));
        // Both near the unweighted greedy size.
        let ratio = w.cost / g.cost;
        assert!(ratio < 2.0, "ratio {ratio}");
    }

    #[test]
    fn cost_within_factor_of_greedy() {
        let inst = set_cover_instance(150, 8_000, 4, 9);
        let costs = random_costs(150, 3, 0.5, 50.0);
        let w = set_cover_weighted_julienne(&inst, &costs, 0.05);
        let g = set_cover_weighted_greedy_seq(&inst, &costs);
        assert!(verify_cover(&inst, &w.cover));
        assert!(verify_cover(&inst, &g.cover));
        assert!(
            w.cost <= 2.5 * g.cost,
            "weighted cost {} vs greedy {}",
            w.cost,
            g.cost
        );
    }

    #[test]
    fn prefers_cheap_sets() {
        // Two identical sets, one far cheaper: the cheap one must be chosen.
        use julienne_graph::builder::EdgeList;
        use julienne_graph::generators::SetCoverInstance;
        // sets {0,1}, elements {2,3,4}: both sets cover all elements.
        let mut el: EdgeList<()> = EdgeList::new(5);
        for e in 2..5u32 {
            el.push_undirected(0, e, ());
            el.push_undirected(1, e, ());
        }
        let inst = SetCoverInstance {
            graph: el.build(true),
            num_sets: 2,
            num_elements: 3,
        };
        let costs = vec![100.0, 1.0];
        let r = set_cover_weighted_julienne(&inst, &costs, 0.1);
        assert_eq!(r.cover, vec![1]);
        assert!((r.cost - 1.0).abs() < 1e-9);
    }
}
