//! Dial's algorithm (1969) — the sequential bucket-queue SSSP the paper
//! cites as the origin of wBFS (reference \[18\]: "Algorithm 360: shortest-path forest
//! with topological ordering").
//!
//! Distances are kept in a circular array of C·1 buckets (C = max edge
//! weight); the scan pointer only moves forward, so the total work is
//! O(m + dist_max). This is the natural *sequential* baseline for wBFS:
//! the Julienne version parallelises exactly this structure.

use crate::INF;
use julienne_graph::VertexId;
use julienne_ligra::traits::OutEdges;

/// Largest bucket ring the dense path will allocate (slots). Beyond this,
/// the ring itself becomes the cost (`max_w = u32::MAX` would be a ~100 GB
/// allocation and a Θ(dist_max) scan), so [`dial`] switches to an ordered
/// sparse bucket map instead.
const MAX_RING: usize = 1 << 20;

/// Sequential Dial SSSP. Requires integer weights ≥ 1; the bucket ring has
/// `max_weight + 1` slots. Weight ranges too wide for a dense ring (see
/// `MAX_RING`) fall back to sparse buckets keyed by exact distance —
/// same peeling order, O(m log m) instead of O(m + dist_max).
pub fn dial<G: OutEdges<W = u32>>(g: &G, src: VertexId) -> Vec<u64> {
    let n = g.num_vertices();
    let mut dist = vec![INF; n];
    if n == 0 {
        return dist;
    }
    dist[src as usize] = 0;
    let mut max_w = 1u32;
    for v in 0..n as VertexId {
        g.for_each_out(v, |_, w| max_w = max_w.max(w));
    }
    let max_w = max_w as usize;
    if max_w >= MAX_RING {
        return dial_sparse(g, src, dist);
    }
    let ring = max_w + 1;
    let mut buckets: Vec<Vec<VertexId>> = vec![Vec::new(); ring];
    buckets[0].push(src);
    let mut remaining = 1usize;
    let mut cur = 0u64;

    while remaining > 0 {
        let slot = (cur % ring as u64) as usize;
        if buckets[slot].is_empty() {
            cur += 1;
            continue;
        }
        let batch = std::mem::take(&mut buckets[slot]);
        for v in batch {
            remaining -= 1;
            if dist[v as usize] != cur {
                continue; // stale entry (lazy decrease-key)
            }
            g.for_each_out(v, |u, w| {
                let nd = cur + w as u64;
                if nd < dist[u as usize] {
                    // `remaining` counts queue entries (stale copies stay
                    // counted until popped and skipped).
                    remaining += 1;
                    dist[u as usize] = nd;
                    buckets[(nd % ring as u64) as usize].push(u);
                }
            });
        }
        // Re-check the same slot: relaxations with w == ring would wrap to
        // it, but w ≤ max_w < ring, so advancing is safe.
        cur += 1;
    }
    dist
}

/// Sparse-bucket variant for huge weight ranges: buckets keyed by exact
/// distance in an ordered map, popped in increasing order. Memory is
/// O(queued vertices) regardless of the weight range.
fn dial_sparse<G: OutEdges<W = u32>>(g: &G, src: VertexId, mut dist: Vec<u64>) -> Vec<u64> {
    use std::collections::BTreeMap;
    let mut buckets: BTreeMap<u64, Vec<VertexId>> = BTreeMap::new();
    buckets.insert(0, vec![src]);
    while let Some((&cur, _)) = buckets.first_key_value() {
        let batch = buckets.remove(&cur).expect("nonempty first bucket");
        for v in batch {
            if dist[v as usize] != cur {
                continue; // stale entry (lazy decrease-key)
            }
            g.for_each_out(v, |u, w| {
                let nd = cur + w as u64;
                if nd < dist[u as usize] {
                    dist[u as usize] = nd;
                    buckets.entry(nd).or_default().push(u);
                }
            });
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::dijkstra;
    use julienne_graph::generators::{erdos_renyi, grid2d};
    use julienne_graph::transform::assign_weights;

    #[test]
    fn matches_dijkstra_small_weights() {
        for seed in 0..3 {
            let g = assign_weights(&erdos_renyi(500, 4_000, seed, true), 1, 12, seed);
            assert_eq!(dial(&g, 0), dijkstra(&g, 0), "seed {seed}");
        }
    }

    #[test]
    fn matches_dijkstra_on_grid() {
        let g = assign_weights(&grid2d(30, 30), 1, 30, 7);
        assert_eq!(dial(&g, 5), dijkstra(&g, 5));
    }

    #[test]
    fn unit_weights_reduce_to_bfs() {
        use crate::bfs::bfs_seq;
        let base = erdos_renyi(800, 6_000, 9, true);
        let g = assign_weights(&base, 1, 2, 1); // all weights exactly 1
        let d = dial(&g, 0);
        let levels = bfs_seq(&base, 0);
        for v in 0..800 {
            let want = if levels[v] == u32::MAX {
                INF
            } else {
                levels[v] as u64
            };
            assert_eq!(d[v], want, "vertex {v}");
        }
    }

    #[test]
    fn huge_weights_take_the_sparse_path() {
        use julienne_graph::builder::EdgeList;
        // One edge at u32::MAX: the dense ring would be a 2^32-slot
        // allocation; the sparse path must answer instantly.
        let mut el: EdgeList<u32> = EdgeList::new(3);
        el.push_undirected(0, 1, u32::MAX);
        el.push_undirected(1, 2, u32::MAX);
        let g = el.build(true);
        assert_eq!(dial(&g, 0), vec![0, u32::MAX as u64, 2 * u32::MAX as u64]);
    }

    #[test]
    fn handles_unreachable() {
        use julienne_graph::builder::EdgeList;
        let mut el: EdgeList<u32> = EdgeList::new(4);
        el.push(0, 1, 3);
        let g = el.build(false);
        assert_eq!(dial(&g, 0), vec![0, 3, INF, INF]);
    }
}
