//! Bucketing-based graph algorithms (Section 4) and their baselines
//! (Section 5 comparators).
//!
//! Each Julienne application follows the paper's pseudocode closely and is
//! paired with the comparators used in Table 3:
//!
//! | problem | Julienne (work-efficient) | baselines |
//! |---------|---------------------------|-----------|
//! | coreness | [`kcore::coreness`] | Ligra-style work-inefficient ([`kcore::coreness_ligra`]), sequential Batagelj–Zaversnik ([`kcore::coreness_bz_seq`]) |
//! | SSSP | [`delta_stepping::sssp`] / [`delta_stepping::wbfs`] | Ligra Bellman–Ford ([`bellman_ford`]), sequential Dijkstra ([`dijkstra`]), GAP-style bin Δ-stepping ([`gap_delta`]) |
//! | set cover | [`setcover::cover`] | PBBS-style non-rebucketing ([`setcover_baselines::set_cover_pbbs_style`]), sequential greedy ([`setcover_baselines::set_cover_greedy_seq`]) |
//!
//! [`bfs`] provides the plain frontier-based BFS (the one-bucket special
//! case) and [`stats`] the workload statistics (peeling complexity ρ,
//! eccentricity estimates) reported in Table 2.
//!
//! [`registry`] is the single dispatch table (algorithm id → typed params
//! → report) that both the CLI and the query server route through.

pub mod bellman_ford;
pub mod betweenness;
pub mod bfs;
pub mod clustering;
pub mod components;
pub mod degeneracy;
pub mod delta_stepping;
pub mod dial;
pub mod dijkstra;
pub mod gap_delta;
pub mod kcore;
pub mod ktruss;
pub mod mis;
pub mod multi_source;
pub mod pagerank;
pub mod registry;
pub mod setcover;
pub mod setcover_baselines;
pub mod setcover_weighted;
pub mod stats;
pub mod triangles;

/// Distance value for unreachable vertices.
pub const INF: u64 = u64::MAX;
