//! Δ-stepping and wBFS (Section 4.2, Algorithm 2).
//!
//! Buckets partition vertices by distance annulus `[i·Δ, (i+1)·Δ)`. Each
//! round extracts the closest unfinished annulus and relaxes its out-edges;
//! the visit protocol (flag CAS, then `writeMin`) guarantees exactly one
//! relaxer per target per round captures the round-start distance, which
//! `Reset` uses to compute the bucket move via `getBucket`.
//!
//! * [`sssp`] — the plain Algorithm 2, parameterized by [`SsspParams`] and
//!   a [`QueryCtx`] (deadline + cancellation polled at round boundaries).
//! * [`wbfs`] — Δ = 1 with integral weights: O(r_src + m) expected work and
//!   O(r_src log n) depth w.h.p. (Theorem 4.2).
//! * [`delta_stepping_light_heavy`] — the Meyer–Sanders light/heavy edge
//!   split the paper implemented but found unhelpful on its inputs (kept
//!   for the A2 ablation).
//!
//! The historical `delta_stepping` / `delta_stepping_opts` /
//! `delta_stepping_with` triplet survives as deprecated one-line wrappers
//! over [`sssp`].

use crate::bellman_ford::SsspResult;
use crate::INF;
use julienne::bucket::{BucketId, Order, NULL_BKT};
use julienne::engine::Engine;
use julienne::query::QueryCtx;
use julienne::telemetry::{Counter, RoundRecord, TraversalKind};
use julienne::Error;
use julienne_graph::builder::EdgeList;
use julienne_graph::csr::Csr;
use julienne_graph::VertexId;
use julienne_ligra::traits::OutEdges;
use julienne_ligra::vertex_ops::vertex_map_data;
use julienne_ligra::EdgeMap;
use julienne_primitives::atomics::write_min_u64;
use julienne_primitives::bitset::AtomicBitSet;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// Δ-stepping SSSP result with bucket-structure counters.
#[derive(Clone, Debug)]
pub struct DeltaResult {
    /// Shortest distance from the source (INF if unreachable).
    pub dist: Vec<u64>,
    /// Buckets extracted (the paper's round count).
    pub rounds: u64,
    /// Edge relaxations attempted.
    pub relaxations: u64,
    /// Identifiers physically moved inside the bucket structure.
    pub identifiers_moved: u64,
}

impl From<DeltaResult> for SsspResult {
    fn from(d: DeltaResult) -> SsspResult {
        SsspResult {
            dist: d.dist,
            rounds: d.rounds,
            relaxations: d.relaxations,
        }
    }
}

/// Largest usable bucket id: `NULL_BKT` is reserved as the "no bucket"
/// sentinel, so distances whose annulus index would reach it are clamped to
/// the id just below. Clamping is *correct*, not just safe: all clamped
/// vertices share the final bucket, and re-relaxations within a bucket
/// reinsert into the current bucket (`get_bucket` handles
/// `next == current`), so processing that bucket converges to the exact
/// distances Bellman-Ford-style — it merely loses priority ordering among
/// those extreme vertices.
pub(crate) const MAX_ANNULUS: u64 = NULL_BKT as u64 - 1;

#[inline]
pub(crate) fn annulus(dist: u64, delta: u64) -> BucketId {
    (dist / delta).min(MAX_ANNULUS) as BucketId
}

/// Parameters for [`sssp`]: Δ-stepping from `src` with bucket width
/// `delta`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SsspParams {
    /// Source vertex.
    pub src: VertexId,
    /// Bucket (annulus) width Δ; `1` makes this wBFS. Must be ≥ 1.
    pub delta: u64,
}

impl Default for SsspParams {
    fn default() -> Self {
        SsspParams {
            src: 0,
            delta: 32_768,
        }
    }
}

/// Δ-stepping SSSP (Algorithm 2): the single entry point behind the
/// `sssp` registry id.
///
/// Generic over the out-edge backend, so it runs unmodified on plain CSR
/// and on Ligra+-style byte-compressed weighted graphs. Bucket window and
/// telemetry scope come from `ctx`'s engine; each annulus round emits a
/// [`RoundRecord`]. The context is polled once per round: a cancelled or
/// deadline-expired query returns `Err` with no partial output, dropping
/// its buckets on the way out.
pub fn sssp<G: OutEdges<W = u32>>(
    g: &G,
    params: &SsspParams,
    ctx: &QueryCtx,
) -> Result<DeltaResult, Error> {
    let SsspParams { src, delta } = *params;
    if delta == 0 {
        return Err(Error::usage("delta must be >= 1"));
    }
    let engine = ctx.engine();
    let n = g.num_vertices();
    let sp: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(INF)).collect();
    sp[src as usize].store(0, Ordering::SeqCst);
    let flags = AtomicBitSet::new(n);
    // Round-start snapshot of the frontier's distances. Relaxing with the
    // snapshot (instead of the live value) makes each round's outcome a
    // pure function of the frontier *set*: an intra-annulus edge that
    // improves a frontier member mid-round no longer changes what that
    // member propagates this round (the improvement reinserts it and
    // propagates next round instead). That order-independence is what lets
    // the fused multi-source kernel reproduce solo results bit-for-bit,
    // and what makes the round count invariant across thread counts.
    let snap: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(INF)).collect();

    // D: the current annulus of each vertex (nullbkt while unreached).
    let d_fun = |v: u32| {
        let s = sp[v as usize].load(Ordering::SeqCst);
        if s == INF {
            NULL_BKT
        } else {
            annulus(s, delta)
        }
    };
    let mut buckets = engine.buckets(n, d_fun, Order::Increasing);
    let telemetry = engine.telemetry();
    let em = engine.edge_map(g);

    let mut rounds = 0u64;
    let mut relaxations = 0u64;
    loop {
        // Round boundary: a cancelled/expired query unwinds here, dropping
        // the bucket structure and distance arrays with it.
        ctx.check()?;
        let span = telemetry.span();
        let Some((bkt, ids)) = buckets.next_bucket() else {
            break;
        };
        rounds += 1;
        let round_edges = ids.par_iter().map(|&v| g.out_degree(v) as u64).sum::<u64>();
        relaxations += round_edges;
        ids.par_iter().for_each(|&v| {
            snap[v as usize].store(sp[v as usize].load(Ordering::SeqCst), Ordering::SeqCst)
        });

        // Update (Algorithm 2, lines 4–10): relax from the round-start
        // snapshot, with the flag CAS electing the unique visitor that
        // captures the round-start distance.
        let moved = em.run_sparse_data(
            &ids,
            |u, v, w| {
                let nd = snap[u as usize].load(Ordering::SeqCst) + w as u64;
                let od = sp[v as usize].load(Ordering::SeqCst);
                if nd < od {
                    if flags.set(v as usize) {
                        write_min_u64(&sp[v as usize], nd);
                        return Some(od);
                    }
                    write_min_u64(&sp[v as usize], nd);
                }
                None
            },
            |_| true,
        );

        // Reset (lines 11–13): clear the flag and compute the bucket move
        // from the round-start annulus to the new one.
        let new_buckets = vertex_map_data(&moved, |v, old_dist| {
            flags.clear(v as usize);
            let new_dist = sp[v as usize].load(Ordering::SeqCst);
            let prev = if old_dist == INF {
                NULL_BKT
            } else {
                annulus(old_dist, delta)
            };
            Some(buckets.get_bucket(prev, annulus(new_dist, delta)))
        });
        buckets.update_buckets(new_buckets.entries());
        telemetry.incr(Counter::Rounds);
        if telemetry.is_enabled() {
            telemetry.record_round(RoundRecord {
                round: (rounds - 1) as u32,
                bucket: bkt,
                frontier: ids.len(),
                edges_scanned: round_edges,
                edges_relaxed: new_buckets.entries().len() as u64,
                mode: TraversalKind::Sparse,
                elapsed_us: span.elapsed_us(),
            });
        }
    }

    let identifiers_moved = buckets.stats().identifiers_moved;
    drop(buckets); // releases the D closure's borrow of `sp`
    Ok(DeltaResult {
        dist: sp.into_iter().map(AtomicU64::into_inner).collect(),
        rounds,
        relaxations,
        identifiers_moved,
    })
}

/// Δ-stepping from `src` with bucket width `delta` (Algorithm 2).
#[deprecated(
    since = "0.1.0",
    note = "use `sssp` with `SsspParams` and a `QueryCtx`"
)]
pub fn delta_stepping<G: OutEdges<W = u32>>(g: &G, src: VertexId, delta: u64) -> DeltaResult {
    sssp(g, &SsspParams { src, delta }, &QueryCtx::default()).expect("uncancellable query")
}

/// [`sssp`] with an explicit number of open buckets.
#[deprecated(
    since = "0.1.0",
    note = "use `sssp` with `SsspParams` and a `QueryCtx`"
)]
pub fn delta_stepping_opts<G: OutEdges<W = u32>>(
    g: &G,
    src: VertexId,
    delta: u64,
    num_open: usize,
) -> DeltaResult {
    let engine = Engine::builder().open_buckets(num_open).build();
    sssp(
        g,
        &SsspParams { src, delta },
        &QueryCtx::from_engine(&engine),
    )
    .expect("uncancellable query")
}

/// [`sssp`] against an [`Engine`]: bucket window and telemetry sink come
/// from the engine.
#[deprecated(
    since = "0.1.0",
    note = "use `sssp` with `SsspParams` and a `QueryCtx`"
)]
pub fn delta_stepping_with<G: OutEdges<W = u32>>(
    g: &G,
    src: VertexId,
    delta: u64,
    engine: &Engine,
) -> DeltaResult {
    sssp(
        g,
        &SsspParams { src, delta },
        &QueryCtx::from_engine(engine),
    )
    .expect("uncancellable query")
}

/// Weighted BFS: Δ-stepping with Δ = 1 (Theorem 4.2).
pub fn wbfs<G: OutEdges<W = u32>>(g: &G, src: VertexId) -> DeltaResult {
    sssp(g, &SsspParams { src, delta: 1 }, &QueryCtx::default()).expect("uncancellable query")
}

/// Δ-stepping with the Meyer–Sanders light/heavy edge split: light edges
/// (w ≤ Δ) are relaxed repeatedly inside the current annulus, heavy edges
/// once per settled vertex when the annulus completes.
pub fn delta_stepping_light_heavy<G: OutEdges<W = u32>>(
    g: &G,
    src: VertexId,
    delta: u64,
) -> DeltaResult {
    assert!(delta >= 1);
    let n = g.num_vertices();

    // Split into light/heavy subgraphs once (the paper: "two graphs, one
    // containing just the light edges and the other just the heavy edges").
    // The split subgraphs are materialised as plain CSR regardless of the
    // input backend.
    let mut light: EdgeList<u32> = EdgeList::new(n);
    let mut heavy: EdgeList<u32> = EdgeList::new(n);
    for u in 0..n as VertexId {
        g.for_each_out(u, |v, w| {
            if w as u64 <= delta {
                light.push(u, v, w);
            } else {
                heavy.push(u, v, w);
            }
        });
    }
    let light = light.build(false);
    let heavy = heavy.build(false);

    let sp: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(INF)).collect();
    sp[src as usize].store(0, Ordering::SeqCst);
    let flags = AtomicBitSet::new(n);
    let d_fun = |v: u32| {
        let s = sp[v as usize].load(Ordering::SeqCst);
        if s == INF {
            NULL_BKT
        } else {
            annulus(s, delta)
        }
    };
    let mut buckets = julienne::bucket::BucketsBuilder::new(n, d_fun, Order::Increasing).build();

    let mut rounds = 0u64;
    let mut relaxations = 0u64;

    // One relaxation pass over `graph` from `ids`, returning bucket moves.
    let relax = |graph: &Csr<u32>,
                 ids: &[VertexId],
                 buckets: &julienne::bucket::Buckets<_>,
                 relaxations: &mut u64|
     -> Vec<(u32, julienne::bucket::BucketDest)> {
        *relaxations += ids.par_iter().map(|&v| graph.degree(v) as u64).sum::<u64>();
        let moved = EdgeMap::new(graph).run_sparse_data(
            ids,
            |u, v, w| {
                let nd = sp[u as usize].load(Ordering::SeqCst) + w as u64;
                let od = sp[v as usize].load(Ordering::SeqCst);
                if nd < od {
                    if flags.set(v as usize) {
                        write_min_u64(&sp[v as usize], nd);
                        return Some(od);
                    }
                    write_min_u64(&sp[v as usize], nd);
                }
                None
            },
            |_| true,
        );
        let dests = vertex_map_data(&moved, |v, old_dist| {
            flags.clear(v as usize);
            let new_dist = sp[v as usize].load(Ordering::SeqCst);
            let prev = if old_dist == INF {
                NULL_BKT
            } else {
                annulus(old_dist, delta)
            };
            Some(buckets.get_bucket(prev, annulus(new_dist, delta)))
        });
        dests.into_entries()
    };

    while let Some((_bkt, first)) = buckets.next_bucket() {
        rounds += 1;
        let mut settled: Vec<VertexId> = Vec::new();
        let mut cur = first;
        // Light phase: drain the current annulus to a fixed point.
        loop {
            settled.extend_from_slice(&cur);
            let moves = relax(&light, &cur, &buckets, &mut relaxations);
            buckets.update_buckets(&moves);
            match buckets.try_next_in_current() {
                Some(more) => cur = more,
                None => break,
            }
        }
        // Heavy phase: each settled vertex relaxes its heavy edges once.
        let moves = relax(&heavy, &settled, &buckets, &mut relaxations);
        buckets.update_buckets(&moves);
    }

    let identifiers_moved = buckets.stats().identifiers_moved;
    drop(buckets); // releases the D closure's borrow of `sp`
    DeltaResult {
        dist: sp.into_iter().map(AtomicU64::into_inner).collect(),
        rounds,
        relaxations,
        identifiers_moved,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::dijkstra;
    use julienne_graph::generators::{erdos_renyi, grid2d, rmat, RmatParams};
    use julienne_graph::transform::{assign_weights, wbfs_weight_range};

    fn weighted_er(seed: u64, lo: u32, hi: u32) -> Csr<u32> {
        assign_weights(&erdos_renyi(400, 3200, seed, true), lo, hi, seed + 100)
    }

    /// Shorthand for the common case: default context, panic on lifecycle
    /// errors (none are possible without a token/deadline).
    fn run<G: OutEdges<W = u32>>(g: &G, src: VertexId, delta: u64) -> DeltaResult {
        sssp(g, &SsspParams { src, delta }, &QueryCtx::default()).unwrap()
    }

    #[test]
    fn wbfs_matches_dijkstra_small_weights() {
        for seed in 0..3 {
            let (lo, hi) = wbfs_weight_range(400);
            let g = weighted_er(seed, lo, hi);
            let r = wbfs(&g, 0);
            assert_eq!(r.dist, dijkstra(&g, 0), "seed {seed}");
        }
    }

    #[test]
    fn delta_stepping_matches_dijkstra_large_weights() {
        for seed in 0..3 {
            let g = weighted_er(seed, 1, 100_000);
            for delta in [1u64, 1000, 32768, 1 << 40] {
                let r = run(&g, 0, delta);
                assert_eq!(r.dist, dijkstra(&g, 0), "seed {seed} delta {delta}");
            }
        }
    }

    #[test]
    fn huge_delta_equals_bellman_ford_semantics() {
        // Δ = ∞ → one bucket → Bellman–Ford behaviour, still correct.
        let g = weighted_er(9, 1, 1000);
        let r = run(&g, 5, u64::MAX / 4);
        assert_eq!(r.dist, dijkstra(&g, 5));
    }

    #[test]
    fn light_heavy_matches_plain() {
        for seed in 0..2 {
            let g = weighted_er(seed + 20, 1, 10_000);
            let plain = run(&g, 0, 512);
            let lh = delta_stepping_light_heavy(&g, 0, 512);
            assert_eq!(plain.dist, lh.dist, "seed {seed}");
        }
    }

    #[test]
    fn grid_high_diameter_correct() {
        let g = assign_weights(&grid2d(30, 30), 1, 20, 4);
        let r = run(&g, 0, 8);
        assert_eq!(r.dist, dijkstra(&g, 0));
        assert!(r.rounds > 10, "grid should need many annuli");
    }

    #[test]
    fn directed_rmat_correct() {
        let g = assign_weights(&rmat(10, 8, RmatParams::default(), 7, false), 1, 50, 8);
        let r = run(&g, 0, 64);
        assert_eq!(r.dist, dijkstra(&g, 0));
    }

    #[test]
    fn wbfs_work_bound_holds() {
        // Theorem 4.2: each edge causes at most one insertion; moves ≤ m.
        let (lo, hi) = wbfs_weight_range(1 << 10);
        let g = assign_weights(&rmat(10, 8, RmatParams::default(), 2, true), lo, hi, 3);
        let r = wbfs(&g, 0);
        assert!(
            r.identifiers_moved <= g.num_edges() as u64,
            "moved {} > m {}",
            r.identifiers_moved,
            g.num_edges()
        );
    }

    #[test]
    fn annulus_overflow_clamps_to_last_bucket() {
        // With Δ = 1 and max-weight (u32::MAX) edges, path lengths blow past
        // the 32-bit bucket-id space after two hops. The annulus index used
        // to truncate silently in release builds (and trip a debug_assert in
        // debug builds); it must instead clamp to the last valid bucket and
        // still produce exact distances.
        use julienne_graph::builder::EdgeList;
        let n = 6;
        let mut el: EdgeList<u32> = EdgeList::new(n);
        for u in 0..(n as u32 - 1) {
            el.push(u, u + 1, u32::MAX);
        }
        // A shortcut with a light edge: forces mixed annuli, including ids
        // both below and at the clamp.
        el.push(0, 2, 3);
        let g = el.build(false);
        let oracle = dijkstra(&g, 0);
        assert!(
            *oracle.iter().filter(|&&d| d != INF).max().unwrap() > NULL_BKT as u64,
            "test graph must actually overflow the bucket-id space"
        );
        for delta in [1u64, 2] {
            let r = run(&g, 0, delta);
            assert_eq!(r.dist, oracle, "delta {delta}");
            let lh = delta_stepping_light_heavy(&g, 0, delta);
            assert_eq!(lh.dist, oracle, "light/heavy delta {delta}");
        }
    }

    #[test]
    fn annulus_function_clamps_not_wraps() {
        assert_eq!(annulus(u64::MAX, 1), MAX_ANNULUS as BucketId);
        assert_eq!(annulus(NULL_BKT as u64, 1), MAX_ANNULUS as BucketId);
        assert_eq!(annulus(NULL_BKT as u64 - 1, 1), NULL_BKT - 1);
        assert_eq!(annulus(10, 3), 3);
    }

    #[test]
    fn unreachable_inf_and_source_zero() {
        use julienne_graph::builder::EdgeList;
        let mut el: EdgeList<u32> = EdgeList::new(5);
        el.push(0, 1, 7);
        el.push(1, 2, 7);
        let g = el.build(false);
        let r = run(&g, 0, 4);
        assert_eq!(r.dist, vec![0, 7, 14, INF, INF]);
    }

    #[test]
    fn wbfs_on_compressed_weighted_graph() {
        use julienne_graph::compress::CompressedWGraph;
        let (lo, hi) = wbfs_weight_range(1 << 11);
        let g = assign_weights(&rmat(11, 8, RmatParams::default(), 13, true), lo, hi, 14);
        let cg = CompressedWGraph::from_csr(&g);
        let plain = wbfs(&g, 0);
        let compressed = wbfs(&cg, 0);
        assert_eq!(plain.dist, compressed.dist);
        assert_eq!(plain.dist, dijkstra(&g, 0));
    }

    #[test]
    fn small_open_buckets_still_correct() {
        let g = weighted_er(31, 1, 100_000);
        let engine = Engine::builder().open_buckets(2).build();
        let r = sssp(
            &g,
            &SsspParams {
                src: 0,
                delta: 1024,
            },
            &QueryCtx::from_engine(&engine),
        )
        .unwrap();
        assert_eq!(r.dist, dijkstra(&g, 0));
    }
}
