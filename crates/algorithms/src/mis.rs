//! Maximal independent set — Ligra's rootset-style application, here via
//! the classic parallel random-priority (Luby-style) rounds built on the
//! frontier engine's primitives.
//!
//! Each round, every undecided vertex whose priority beats all undecided
//! neighbors joins the set; its neighbors leave. Expected O(log n) rounds.

use julienne_graph::VertexId;
use julienne_ligra::traits::{GraphRef, OutEdges};
use julienne_primitives::filter::pack_index;
use julienne_primitives::rng::hash64;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU8, Ordering};

const UNDECIDED: u8 = 0;
const IN_SET: u8 = 1;
const OUT: u8 = 2;

/// Result of an MIS computation.
#[derive(Clone, Debug)]
pub struct MisResult {
    /// The independent set.
    pub members: Vec<VertexId>,
    /// Rounds until every vertex was decided.
    pub rounds: u64,
}

/// Luby-style maximal independent set on a symmetric graph; deterministic
/// given `seed`.
pub fn maximal_independent_set<G: GraphRef>(g: &G, seed: u64) -> MisResult {
    assert!(g.is_symmetric());
    let n = g.num_vertices();
    let state: Vec<AtomicU8> = (0..n).map(|_| AtomicU8::new(UNDECIDED)).collect();
    let priority = |round: u64, v: VertexId| hash64(seed ^ round.wrapping_mul(0x9E37), v as u64);

    let mut undecided: Vec<VertexId> = (0..n as VertexId).collect();
    let mut rounds = 0u64;
    while !undecided.is_empty() {
        rounds += 1;
        // Winners: undecided vertices that beat every undecided neighbor.
        let winners: Vec<VertexId> = undecided
            .par_iter()
            .copied()
            .filter(|&v| {
                let pv = priority(rounds, v);
                let mut beats_all = true;
                g.for_each_out_until(v, |u, _| {
                    let wins = state[u as usize].load(Ordering::SeqCst) != UNDECIDED || {
                        let pu = priority(rounds, u);
                        // Total order: (priority, id).
                        (pv, v) > (pu, u)
                    };
                    if !wins {
                        beats_all = false;
                    }
                    wins
                });
                beats_all
            })
            .collect();
        winners.par_iter().for_each(|&v| {
            state[v as usize].store(IN_SET, Ordering::SeqCst);
        });
        winners.par_iter().for_each(|&v| {
            g.for_each_out(v, |u, _| {
                // Two adjacent winners are impossible (total order), so
                // only UNDECIDED neighbors transition here.
                let _ = state[u as usize].compare_exchange(
                    UNDECIDED,
                    OUT,
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                );
            });
        });
        undecided = undecided
            .into_par_iter()
            .filter(|&v| state[v as usize].load(Ordering::SeqCst) == UNDECIDED)
            .collect();
    }

    let members = pack_index(n, |v| state[v].load(Ordering::SeqCst) == IN_SET);
    MisResult { members, rounds }
}

/// Checks independence and maximality.
pub fn verify_mis<G: OutEdges>(g: &G, members: &[VertexId]) -> bool {
    let n = g.num_vertices();
    let mut in_set = vec![false; n];
    for &v in members {
        in_set[v as usize] = true;
    }
    // Independent: no edge inside the set.
    let independent = members.par_iter().all(|&v| {
        let mut ok = true;
        g.for_each_out_until(v, |u, _| {
            ok = !in_set[u as usize];
            ok
        });
        ok
    });
    // Maximal: every non-member has a member neighbor.
    let maximal = (0..n).into_par_iter().all(|v| {
        if in_set[v] {
            return true;
        }
        let mut found = false;
        g.for_each_out_until(v as VertexId, |u, _| {
            found = in_set[u as usize];
            !found
        });
        found
    });
    independent && maximal
}

#[cfg(test)]
mod tests {
    use super::*;
    use julienne_graph::builder::from_pairs_symmetric;
    use julienne_graph::generators::{erdos_renyi, grid2d, rmat, RmatParams};

    #[test]
    fn valid_on_random_graphs() {
        for seed in 0..3 {
            let g = erdos_renyi(1_000, 8_000, seed, true);
            let r = maximal_independent_set(&g, seed);
            assert!(verify_mis(&g, &r.members), "seed {seed}");
            assert!(!r.members.is_empty());
        }
    }

    #[test]
    fn valid_on_heavy_tailed_and_grid() {
        let g = rmat(10, 8, RmatParams::default(), 3, true);
        let r = maximal_independent_set(&g, 1);
        assert!(verify_mis(&g, &r.members));
        let grid = grid2d(30, 30);
        let r = maximal_independent_set(&grid, 2);
        assert!(verify_mis(&grid, &r.members));
        // A grid MIS takes at least a quarter of the vertices.
        assert!(r.members.len() >= 225);
    }

    #[test]
    fn empty_graph_takes_everything() {
        let g = from_pairs_symmetric(5, &[]);
        let r = maximal_independent_set(&g, 0);
        assert_eq!(r.members.len(), 5);
        assert_eq!(r.rounds, 1);
    }

    #[test]
    fn triangle_yields_single_vertex() {
        let g = from_pairs_symmetric(3, &[(0, 1), (1, 2), (0, 2)]);
        let r = maximal_independent_set(&g, 7);
        assert_eq!(r.members.len(), 1);
        assert!(verify_mis(&g, &r.members));
    }

    #[test]
    fn deterministic_per_seed() {
        let g = erdos_renyi(300, 2_000, 9, true);
        let a = maximal_independent_set(&g, 42);
        let b = maximal_independent_set(&g, 42);
        assert_eq!(a.members, b.members);
    }
}
