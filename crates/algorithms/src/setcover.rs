//! Work-efficient approximate set cover (Section 4.3, Algorithm 3).
//!
//! Implements the Blelloch–Peng–Tangwongsan bucketing algorithm: sets are
//! bucketed by `⌊log_{1+ε} D[s]⌋` (uncovered elements covered) and processed
//! from the costliest bucket down; each round fuses one MaNIS step — active
//! sets reserve uncovered elements with `writeMin` (ties to the smaller set
//! id), sets that won enough join the cover, the rest release their
//! reservations and are **rebucketed** (the step the PBBS comparator skips,
//! making it work-inefficient).
//!
//! One deliberate deviation from the pseudocode: the WonEnough threshold is
//! the *float* `(1+ε)^(b−1)` rather than `⌈(1+ε)^max(b−1,0)⌉`, and the test
//! is `elmsWon > threshold`. With the integer ceiling as literally written,
//! a degree-1 set in bucket 0 can never win (`1 > 1` fails) and the
//! algorithm livelocks; with the float threshold the smallest-id active set
//! always wins all of its elements and is chosen, so every round makes
//! progress while the per-bucket (1+ε) approximation factor is preserved.

use julienne::bucket::{BucketDest, BucketId, Order, NULL_BKT};
use julienne::engine::Engine;
use julienne::query::QueryCtx;
use julienne::telemetry::{Counter, RoundRecord, TraversalKind};
use julienne::Error;
use julienne_graph::generators::SetCoverInstance;
use julienne_graph::packed::PackedGraph;
use julienne_graph::VertexId;
use julienne_ligra::edge_map_filter::{
    edge_map_filter_count, edge_map_filter_pack, edge_map_packed,
};
use julienne_primitives::atomics::write_min_u32;
use julienne_primitives::bitset::AtomicBitSet;
use julienne_primitives::filter::filter_map;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

/// Marker for sets that joined the cover (the pseudocode's `D[s] = ∞`).
const IN_COVER: u32 = u32::MAX;
/// Marker for unreserved elements (the pseudocode's `El[e] = ∞`).
const UNRESERVED: u32 = u32::MAX;

/// Result of a set-cover computation.
#[derive(Clone, Debug)]
pub struct SetCoverResult {
    /// Ids of the chosen sets.
    pub cover: Vec<VertexId>,
    /// For each element, the chosen set covering it (`u32::MAX` if the
    /// element was uncoverable, which cannot happen for generated
    /// instances).
    pub assignment: Vec<u32>,
    /// Bucket rounds executed.
    pub rounds: u64,
    /// Total set-element edges examined.
    pub edges_examined: u64,
}

/// Computes `⌊log_{1+ε} d⌋` (the paper's `BucketNum`), or `NULL_BKT` for
/// degree 0 / in-cover sets.
#[inline]
fn bucket_num(d: u32, inv_log1p_eps: f64) -> BucketId {
    if d == 0 || d == IN_COVER {
        return NULL_BKT;
    }
    ((d as f64).ln() * inv_log1p_eps).floor() as BucketId
}

/// Parameters for [`cover`]: the approximation knob ε.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SetCoverParams {
    /// Bucketing granularity ε; the per-bucket approximation factor is
    /// (1+ε). The paper's experiments use ε = 0.01. Must be > 0.
    pub eps: f64,
}

impl Default for SetCoverParams {
    fn default() -> Self {
        SetCoverParams { eps: 0.01 }
    }
}

/// Work-efficient approximate set cover (Algorithm 3): the single entry
/// point behind the `setcover` registry id.
///
/// Bucket window and telemetry scope come from `ctx`'s engine; each bucket
/// round emits a [`RoundRecord`]. The context is polled once per round: a
/// cancelled or deadline-expired query returns `Err` with no partial
/// output, dropping its buckets on the way out.
pub fn cover(
    inst: &SetCoverInstance,
    params: &SetCoverParams,
    ctx: &QueryCtx,
) -> Result<SetCoverResult, Error> {
    let eps = params.eps;
    if eps.is_nan() || eps <= 0.0 {
        return Err(Error::usage("eps must be > 0"));
    }
    let engine = ctx.engine();
    let num_sets = inst.num_sets;
    let num_elements = inst.num_elements;
    let _n = num_sets + num_elements;
    let inv_log1p_eps = 1.0 / (1.0 + eps).ln();

    let mut packed = PackedGraph::from_csr(&inst.graph);
    // El: element → reserving set (offset by num_sets in vertex space).
    let el: Vec<AtomicU32> = (0..num_elements)
        .map(|_| AtomicU32::new(UNRESERVED))
        .collect();
    let covered = AtomicBitSet::new(num_elements);
    // D: remaining uncovered elements per set; IN_COVER once chosen.
    let d: Vec<AtomicU32> = (0..num_sets)
        .map(|s| AtomicU32::new(inst.graph.degree(s as VertexId) as u32))
        .collect();

    let elem_idx = |e: VertexId| (e as usize) - num_sets;
    let d_fun = |s: u32| bucket_num(d[s as usize].load(Ordering::SeqCst), inv_log1p_eps);
    let mut buckets = engine.buckets(num_sets, d_fun, Order::Decreasing);
    let telemetry = engine.telemetry();

    let mut rounds = 0u64;
    let mut edges_examined = 0u64;

    loop {
        // Round boundary: a cancelled/expired query unwinds here, dropping
        // the bucket structure and reservation arrays with it.
        ctx.check()?;
        let span = telemetry.span();
        let Some((b, sets)) = buckets.next_bucket() else {
            break;
        };
        rounds += 1;
        let round_edges = sets
            .par_iter()
            .map(|&s| packed.degree(s) as u64)
            .sum::<u64>();
        edges_examined += round_edges;

        // Phase 1 (lines 25–27): pack out covered elements, refresh D, and
        // keep the sets still above this bucket's threshold active.
        let sets_d = edge_map_filter_pack(&mut packed, &sets, |_s, e| !covered.get(elem_idx(e)));
        sets_d.entries().par_iter().for_each(|&(s, new_deg)| {
            d[s as usize].store(new_deg, Ordering::SeqCst);
        });
        let threshold_active = (1.0 + eps).powi(b as i32).ceil() as u32;
        let active: Vec<VertexId> = filter_map(sets_d.entries(), |&(s, deg)| {
            if deg >= threshold_active {
                Some(s)
            } else {
                None
            }
        });

        if !active.is_empty() {
            // Phase 2 (lines 28–30): one MaNIS step. Active sets reserve
            // uncovered elements (smallest id wins), then sets that won
            // more than (1+ε)^(b−1) elements join the cover.
            edge_map_packed(
                &packed,
                &active,
                |s, e| {
                    write_min_u32(&el[elem_idx(e)], s);
                },
                |e| !covered.get(elem_idx(e)),
            );
            let active_counts = edge_map_filter_count(&packed, &active, |s, e| {
                el[elem_idx(e)].load(Ordering::SeqCst) == s
            });
            let threshold_win = (1.0 + eps).powi(b as i32 - 1);
            active_counts.entries().par_iter().for_each(|&(s, won)| {
                if won as f64 > threshold_win {
                    d[s as usize].store(IN_COVER, Ordering::SeqCst);
                }
            });

            // Phase 3 (line 31): mark elements of chosen sets covered;
            // release reservations of the rest.
            edge_map_packed(
                &packed,
                &active,
                |s, e| {
                    let ei = elem_idx(e);
                    if el[ei].load(Ordering::SeqCst) == s {
                        if d[s as usize].load(Ordering::SeqCst) == IN_COVER {
                            covered.set(ei);
                        } else {
                            el[ei].store(UNRESERVED, Ordering::SeqCst);
                        }
                    }
                },
                |_| true,
            );
        }

        // Phase 4 (lines 32–33): rebucket every extracted set that did not
        // join the cover.
        let rebucket: Vec<(u32, BucketDest)> = filter_map(&sets, |&s| {
            let deg = d[s as usize].load(Ordering::SeqCst);
            if deg == IN_COVER {
                return None;
            }
            Some((s, buckets.get_bucket(b, bucket_num(deg, inv_log1p_eps))))
        });
        buckets.update_buckets(&rebucket);
        telemetry.incr(Counter::Rounds);
        telemetry.add(Counter::VerticesScanned, sets.len() as u64);
        telemetry.add(Counter::EdgesScanned, round_edges);
        if telemetry.is_enabled() {
            telemetry.record_round(RoundRecord {
                round: (rounds - 1) as u32,
                bucket: b,
                frontier: sets.len(),
                edges_scanned: round_edges,
                // Sets that joined the cover this round.
                edges_relaxed: (sets.len() - rebucket.len()) as u64,
                mode: TraversalKind::Sparse,
                elapsed_us: span.elapsed_us(),
            });
        }
    }

    let cover: Vec<VertexId> = filter_map(&(0..num_sets as u32).collect::<Vec<_>>(), |&s| {
        if d[s as usize].load(Ordering::SeqCst) == IN_COVER {
            Some(s)
        } else {
            None
        }
    });
    let assignment: Vec<u32> = el.into_iter().map(AtomicU32::into_inner).collect();

    Ok(SetCoverResult {
        cover,
        assignment,
        rounds,
        edges_examined,
    })
}

/// Work-efficient approximate set cover (Algorithm 3) with parameter `eps`
/// (the paper's experiments use ε = 0.01).
#[deprecated(
    since = "0.1.0",
    note = "use `cover` with `SetCoverParams` and a `QueryCtx`"
)]
pub fn set_cover_julienne(inst: &SetCoverInstance, eps: f64) -> SetCoverResult {
    cover(inst, &SetCoverParams { eps }, &QueryCtx::default()).expect("uncancellable query")
}

/// [`cover`] against an [`Engine`]: bucket window and telemetry sink come
/// from the engine.
#[deprecated(
    since = "0.1.0",
    note = "use `cover` with `SetCoverParams` and a `QueryCtx`"
)]
pub fn set_cover_julienne_with(
    inst: &SetCoverInstance,
    eps: f64,
    engine: &Engine,
) -> SetCoverResult {
    cover(
        inst,
        &SetCoverParams { eps },
        &QueryCtx::from_engine(engine),
    )
    .expect("uncancellable query")
}

/// Checks that `cover` covers every element of the instance.
pub fn verify_cover(inst: &SetCoverInstance, cover: &[VertexId]) -> bool {
    let mut in_cover = vec![false; inst.num_sets];
    for &s in cover {
        in_cover[s as usize] = true;
    }
    (0..inst.num_elements).into_par_iter().all(|e| {
        inst.graph
            .neighbors(inst.element_vertex(e))
            .iter()
            .any(|&s| in_cover[s as usize])
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setcover_baselines::set_cover_greedy_seq;
    use julienne_graph::generators::set_cover_instance;

    /// Shorthand: default context, panic on lifecycle/usage errors.
    fn run(inst: &SetCoverInstance, eps: f64) -> SetCoverResult {
        cover(inst, &SetCoverParams { eps }, &QueryCtx::default()).unwrap()
    }

    #[test]
    fn covers_small_instances() {
        for seed in 0..5 {
            let inst = set_cover_instance(20, 200, 3, seed);
            let r = run(&inst, 0.01);
            assert!(verify_cover(&inst, &r.cover), "seed {seed}");
            assert!(!r.cover.is_empty());
        }
    }

    #[test]
    fn covers_larger_instance() {
        let inst = set_cover_instance(300, 20_000, 4, 42);
        let r = run(&inst, 0.01);
        assert!(verify_cover(&inst, &r.cover));
    }

    #[test]
    fn cost_close_to_greedy() {
        // The (1+ε)Hₙ guarantee: our cover should be within a small factor
        // of sequential greedy.
        let inst = set_cover_instance(200, 10_000, 4, 7);
        let jul = run(&inst, 0.01);
        let greedy = set_cover_greedy_seq(&inst);
        assert!(verify_cover(&inst, &jul.cover));
        assert!(verify_cover(&inst, &greedy.cover));
        let ratio = jul.cover.len() as f64 / greedy.cover.len() as f64;
        assert!(ratio <= 2.0, "parallel cover {}x larger than greedy", ratio);
    }

    #[test]
    fn assignment_consistent_with_cover() {
        let inst = set_cover_instance(50, 2000, 3, 9);
        let r = run(&inst, 0.05);
        let in_cover: std::collections::HashSet<u32> = r.cover.iter().copied().collect();
        for (e, &s) in r.assignment.iter().enumerate() {
            if s != u32::MAX {
                assert!(
                    in_cover.contains(&s),
                    "element {e} assigned to non-cover set {s}"
                );
                // s really contains e.
                assert!(inst.graph.neighbors(s).contains(&inst.element_vertex(e)));
            }
        }
        // Every element must be assigned (instance guarantees coverage).
        assert!(r.assignment.iter().all(|&s| s != u32::MAX));
    }

    #[test]
    fn eps_variations_all_valid() {
        let inst = set_cover_instance(100, 5000, 3, 11);
        for eps in [0.01, 0.1, 0.5, 1.0] {
            let r = run(&inst, eps);
            assert!(verify_cover(&inst, &r.cover), "eps {eps}");
        }
    }

    #[test]
    fn single_set_instance() {
        // One set covering everything: cover = {0}.
        let inst = set_cover_instance(1, 50, 1, 3);
        let r = run(&inst, 0.01);
        assert_eq!(r.cover, vec![0]);
        assert!(verify_cover(&inst, &r.cover));
    }
}
