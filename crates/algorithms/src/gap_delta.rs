//! GAP-benchmark-style Δ-stepping — the Table 3 comparator.
//!
//! The GAP suite's SSSP does not use a shared work-efficient bucket
//! structure; it appends relaxed vertices to per-round bins keyed by
//! annulus, allowing duplicates, and lazily skips stale entries at
//! extraction (checking the vertex's current distance against the bin
//! index). Simpler, but each vertex can appear in many bins.

use crate::bellman_ford::SsspResult;
use crate::INF;
use julienne_graph::VertexId;
use julienne_ligra::traits::OutEdges;
use julienne_primitives::atomics::write_min_u64;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// Largest dense bin array the fast path may grow (slots). Bin index is
/// `dist / Δ`, so tiny Δ with huge weights would resize `bins` into the
/// billions (a 100 GB allocation at `u32::MAX` weights) and scan every
/// empty slot; past this bound the ordered-map fallback takes over.
const MAX_DENSE_BINS: u64 = 1 << 22;

/// GAP-style bin-based Δ-stepping from `src`.
pub fn gap_delta_stepping<G: OutEdges<W = u32>>(g: &G, src: VertexId, delta: u64) -> SsspResult {
    assert!(delta >= 1);
    let n = g.num_vertices();
    let dist: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(INF)).collect();
    if n == 0 {
        return SsspResult {
            dist: vec![],
            rounds: 0,
            relaxations: 0,
        };
    }
    dist[src as usize].store(0, Ordering::SeqCst);

    // Conservative bin-count bound: the largest finite distance is below
    // n · max_w, so the dense array can never outgrow bound / Δ.
    let mut max_w = 1u32;
    for v in 0..n as VertexId {
        g.for_each_out(v, |_, w| max_w = max_w.max(w));
    }
    if (n as u64).saturating_mul(max_w as u64) / delta >= MAX_DENSE_BINS {
        return gap_delta_sparse(g, src, delta, dist);
    }

    let mut bins: Vec<Vec<VertexId>> = vec![vec![src]];
    let mut cur = 0usize;
    let mut rounds = 0u64;
    let mut relaxations = 0u64;

    while cur < bins.len() {
        if bins[cur].is_empty() {
            cur += 1;
            continue;
        }
        let frontier = std::mem::take(&mut bins[cur]);
        // Lazy dedup: keep only entries whose distance still maps to this
        // bin (GAP re-checks dist on pop).
        let live: Vec<VertexId> = frontier
            .into_par_iter()
            .filter(|&v| {
                let d = dist[v as usize].load(Ordering::SeqCst);
                d != INF && (d / delta) as usize == cur
            })
            .collect();
        if live.is_empty() {
            // Bin may be refilled by in-annulus relaxations; only advance
            // when it stays empty.
            if bins[cur].is_empty() {
                cur += 1;
            }
            continue;
        }
        rounds += 1;
        relaxations += live
            .par_iter()
            .map(|&v| g.out_degree(v) as u64)
            .sum::<u64>();

        // Relax in parallel, collecting (bin, vertex) pushes per chunk
        // (stand-in for GAP's thread-local bins).
        let dist_ref = &dist;
        let pushes: Vec<(usize, VertexId)> = live
            .par_iter()
            .flat_map_iter(|&u| {
                let du = dist_ref[u as usize].load(Ordering::SeqCst);
                let mut local = Vec::new();
                g.for_each_out(u, |v, w| {
                    let nd = du + w as u64;
                    if write_min_u64(&dist_ref[v as usize], nd) {
                        local.push(((nd / delta) as usize, v));
                    }
                });
                local
            })
            .collect();
        for (bin, v) in pushes {
            if bin >= bins.len() {
                bins.resize_with(bin + 1, Vec::new);
            }
            bins[bin].push(v);
        }
    }

    SsspResult {
        dist: dist.into_iter().map(AtomicU64::into_inner).collect(),
        rounds,
        relaxations,
    }
}

/// Ordered-map variant for weight/Δ combinations whose bin indices would
/// blow up the dense array: bins keyed by annulus in a `BTreeMap`, always
/// popping the smallest. Same extraction semantics (lazy dedup, in-annulus
/// refills re-pop the same key); memory is O(queued vertices).
fn gap_delta_sparse<G: OutEdges<W = u32>>(
    g: &G,
    src: VertexId,
    delta: u64,
    dist: Vec<AtomicU64>,
) -> SsspResult {
    use std::collections::BTreeMap;
    let mut bins: BTreeMap<u64, Vec<VertexId>> = BTreeMap::new();
    bins.insert(0, vec![src]);
    let mut rounds = 0u64;
    let mut relaxations = 0u64;

    while let Some((&cur, _)) = bins.first_key_value() {
        let frontier = bins.remove(&cur).expect("nonempty first bin");
        let live: Vec<VertexId> = frontier
            .into_par_iter()
            .filter(|&v| {
                let d = dist[v as usize].load(Ordering::SeqCst);
                d != INF && d / delta == cur
            })
            .collect();
        if live.is_empty() {
            continue;
        }
        rounds += 1;
        relaxations += live
            .par_iter()
            .map(|&v| g.out_degree(v) as u64)
            .sum::<u64>();

        let dist_ref = &dist;
        let pushes: Vec<(u64, VertexId)> = live
            .par_iter()
            .flat_map_iter(|&u| {
                let du = dist_ref[u as usize].load(Ordering::SeqCst);
                let mut local = Vec::new();
                g.for_each_out(u, |v, w| {
                    let nd = du + w as u64;
                    if write_min_u64(&dist_ref[v as usize], nd) {
                        local.push((nd / delta, v));
                    }
                });
                local
            })
            .collect();
        for (bin, v) in pushes {
            bins.entry(bin).or_default().push(v);
        }
    }

    SsspResult {
        dist: dist.into_iter().map(AtomicU64::into_inner).collect(),
        rounds,
        relaxations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::dijkstra;
    use julienne_graph::generators::{erdos_renyi, grid2d};
    use julienne_graph::transform::assign_weights;

    #[test]
    fn matches_dijkstra_random() {
        for seed in 0..3 {
            let g = assign_weights(&erdos_renyi(400, 3000, seed, true), 1, 100_000, seed);
            for delta in [1u64, 4096, 32768] {
                let r = gap_delta_stepping(&g, 0, delta);
                assert_eq!(r.dist, dijkstra(&g, 0), "seed {seed} delta {delta}");
            }
        }
    }

    #[test]
    fn matches_dijkstra_grid() {
        let g = assign_weights(&grid2d(25, 25), 1, 50, 2);
        let r = gap_delta_stepping(&g, 0, 16);
        assert_eq!(r.dist, dijkstra(&g, 0));
    }

    #[test]
    fn huge_weights_take_the_sparse_path() {
        use julienne_graph::builder::EdgeList;
        let mut el: EdgeList<u32> = EdgeList::new(3);
        el.push_undirected(0, 1, u32::MAX);
        el.push_undirected(1, 2, u32::MAX);
        let g = el.build(true);
        // Δ = 1 with u32::MAX weights would need ~2^33 dense bins.
        let r = gap_delta_stepping(&g, 0, 1);
        assert_eq!(r.dist, vec![0, u32::MAX as u64, 2 * u32::MAX as u64]);
    }

    #[test]
    fn sparse_and_dense_paths_agree() {
        // Same instance pushed down both paths by varying Δ around the
        // bound: results must be identical.
        let g = assign_weights(&erdos_renyi(300, 2_400, 6, true), 1, 100_000, 8);
        let want = dijkstra(&g, 0);
        for delta in [1u64, 7, 101] {
            // n·max_w/Δ ≈ 3e7/Δ: Δ=1 and 7 go sparse, Δ=101 stays dense.
            assert_eq!(gap_delta_stepping(&g, 0, delta).dist, want, "Δ={delta}");
        }
    }

    #[test]
    fn duplicates_mean_more_relaxations_than_julienne_on_low_delta() {
        use crate::delta_stepping::{sssp, SsspParams};
        use julienne::query::QueryCtx;
        let g = assign_weights(&erdos_renyi(1000, 16_000, 5, true), 1, 100_000, 7);
        let gap = gap_delta_stepping(&g, 0, 100_000);
        let jul = sssp(
            &g,
            &SsspParams {
                src: 0,
                delta: 100_000,
            },
            &QueryCtx::default(),
        )
        .unwrap();
        assert_eq!(gap.dist, jul.dist);
        // Without the flag protocol, GAP-style bins hold duplicates; its
        // relaxation count is at least Julienne's.
        assert!(gap.relaxations >= jul.relaxations);
    }
}
