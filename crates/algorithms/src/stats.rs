//! Workload statistics for Table 2: graph sizes, peeling complexity ρ, and
//! eccentricity estimates.

use crate::bfs::bfs_seq;
use crate::kcore::{coreness, KcoreParams};
use julienne::query::QueryCtx;
use julienne_graph::VertexId;
use julienne_ligra::traits::{GraphRef, OutEdges};

/// Table 2-style statistics of an input graph.
#[derive(Clone, Debug)]
pub struct GraphStats {
    /// |V|.
    pub num_vertices: usize,
    /// |E| (directed edge count).
    pub num_edges: usize,
    /// Peeling complexity ρ: rounds of the bucketed peeling process
    /// (symmetric graphs only — `None` for directed, matching the paper's
    /// "–" entries).
    pub rho: Option<u64>,
    /// Largest coreness k_max (symmetric graphs only).
    pub k_max: Option<u32>,
    /// Maximum out-degree.
    pub max_degree: u32,
    /// BFS eccentricity of vertex 0 (hop radius estimate r_src).
    pub eccentricity_from_zero: u32,
}

/// Computes the statistics. ρ and k_max run the work-efficient peeling and
/// are only defined for symmetric graphs.
pub fn graph_stats<G: GraphRef>(g: &G) -> GraphStats {
    let (rho, k_max) = if g.is_symmetric() {
        // Weights are irrelevant to coreness, so peel the graph directly.
        let r = coreness(g, &KcoreParams::default(), &QueryCtx::default())
            .expect("uncancellable query");
        let k_max = r.coreness.iter().copied().max().unwrap_or(0);
        (Some(r.rounds), Some(k_max))
    } else {
        (None, None)
    };
    let levels = bfs_seq(g, 0);
    let ecc = levels
        .iter()
        .copied()
        .filter(|&l| l != u32::MAX)
        .max()
        .unwrap_or(0);
    let max_degree = (0..g.num_vertices() as VertexId)
        .map(|v| g.out_degree(v) as u32)
        .max()
        .unwrap_or(0);
    GraphStats {
        num_vertices: g.num_vertices(),
        num_edges: g.num_edges(),
        rho,
        k_max,
        max_degree,
        eccentricity_from_zero: ecc,
    }
}

/// Lower-bounds the diameter by running BFS from `samples` pseudo-random
/// start vertices (restricted to non-isolated ones) and taking the largest
/// finite eccentricity seen — the standard multi-BFS estimator.
pub fn estimate_diameter<G: OutEdges>(g: &G, samples: usize, seed: u64) -> u32 {
    use julienne_primitives::rng::hash_range;
    let n = g.num_vertices();
    if n == 0 {
        return 0;
    }
    let mut best = 0u32;
    let mut tried = 0usize;
    let mut i = 0u64;
    while tried < samples && (i as usize) < 8 * samples + n {
        let v = hash_range(seed, i, n as u64) as VertexId;
        i += 1;
        if g.out_degree(v) == 0 {
            continue;
        }
        tried += 1;
        let levels = bfs_seq(g, v);
        let ecc = levels
            .iter()
            .copied()
            .filter(|&l| l != u32::MAX)
            .max()
            .unwrap_or(0);
        best = best.max(ecc);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use julienne_graph::builder::from_pairs_symmetric;
    use julienne_graph::generators::grid2d;

    #[test]
    fn grid_stats() {
        let g = grid2d(10, 10);
        let s = graph_stats(&g);
        assert_eq!(s.num_vertices, 100);
        assert_eq!(s.num_edges, 360);
        assert_eq!(s.k_max, Some(2));
        assert_eq!(s.max_degree, 4);
        assert_eq!(s.eccentricity_from_zero, 18);
        assert!(s.rho.unwrap() >= 2);
    }

    #[test]
    fn directed_graph_has_no_rho() {
        use julienne_graph::builder::from_pairs;
        let g = from_pairs(4, &[(0, 1), (1, 2)]);
        let s = graph_stats(&g);
        assert!(s.rho.is_none());
        assert!(s.k_max.is_none());
        assert_eq!(s.eccentricity_from_zero, 2);
    }

    #[test]
    fn diameter_estimate_bounds() {
        // Grid diameter = rows + cols - 2; the estimate is a lower bound
        // that reaches at least the eccentricity of some sampled vertex,
        // which on a path-like graph is ≥ half the diameter.
        let g = grid2d(1, 50); // a path: diameter 49
        let est = estimate_diameter(&g, 8, 3);
        assert!((25..=49).contains(&est), "estimate {est}");
        // On a star, every eccentricity is ≤ 2.
        let pairs: Vec<(u32, u32)> = (1..20).map(|i| (0, i)).collect();
        let star = from_pairs_symmetric(20, &pairs);
        assert!(estimate_diameter(&star, 5, 1) <= 2);
    }

    #[test]
    fn clique_rho_is_one() {
        // A clique peels in one round.
        let mut pairs = Vec::new();
        for i in 0..5u32 {
            for j in (i + 1)..5 {
                pairs.push((i, j));
            }
        }
        let g = from_pairs_symmetric(5, &pairs);
        let s = graph_stats(&g);
        assert_eq!(s.rho, Some(1));
        assert_eq!(s.k_max, Some(4));
    }
}
