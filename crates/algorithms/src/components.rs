//! Connected components via label propagation — the frontier-based
//! algorithm the paper's introduction uses to motivate Ligra (each round's
//! frontier is the set of vertices whose label changed), plus a sequential
//! union-find oracle.

use julienne_ligra::edge_map::EdgeMap;
use julienne_ligra::subset::VertexSubset;
use julienne_ligra::traits::{GraphRef, OutEdges};
use julienne_primitives::atomics::write_min_u32;
use julienne_primitives::bitset::AtomicBitSet;
use std::sync::atomic::{AtomicU32, Ordering};

/// Result of a connected-components computation.
#[derive(Clone, Debug)]
pub struct ComponentsResult {
    /// Component label of each vertex (the minimum vertex id in its
    /// component).
    pub label: Vec<u32>,
    /// Number of label-propagation rounds.
    pub rounds: u64,
}

/// Label propagation on a symmetric graph: every vertex starts with its own
/// id; each round, frontier vertices push their label to neighbors via
/// `writeMin`. Converges in O(component diameter) rounds.
pub fn connected_components<G: GraphRef>(g: &G) -> ComponentsResult {
    assert!(
        g.is_symmetric(),
        "label propagation requires a symmetric graph"
    );
    let n = g.num_vertices();
    let label: Vec<AtomicU32> = (0..n as u32).map(AtomicU32::new).collect();
    let flags = AtomicBitSet::new(n);

    let mut frontier = VertexSubset::all(n);
    let mut rounds = 0u64;
    while !frontier.is_empty() {
        rounds += 1;
        let next = EdgeMap::new(g).run(
            &frontier,
            |u, v, _| {
                let lu = label[u as usize].load(Ordering::SeqCst);
                if write_min_u32(&label[v as usize], lu) {
                    return flags.set(v as usize);
                }
                false
            },
            |_| true,
        );
        for v in &next {
            flags.clear(v as usize);
        }
        frontier = next;
    }

    ComponentsResult {
        label: label.into_iter().map(AtomicU32::into_inner).collect(),
        rounds,
    }
}

/// Sequential union-find oracle (path halving + union by index).
pub fn connected_components_seq<G: OutEdges>(g: &G) -> Vec<u32> {
    let n = g.num_vertices();
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            parent[x as usize] = parent[parent[x as usize] as usize];
            x = parent[x as usize];
        }
        x
    }
    for u in 0..n as u32 {
        let mut targets = Vec::new();
        g.for_each_out(u, |v, _| targets.push(v));
        for v in targets {
            let ru = find(&mut parent, u);
            let rv = find(&mut parent, v);
            if ru != rv {
                // Attach the larger root under the smaller so labels end up
                // as component minima.
                let (lo, hi) = (ru.min(rv), ru.max(rv));
                parent[hi as usize] = lo;
            }
        }
    }
    (0..n as u32).map(|v| find(&mut parent, v)).collect()
}

/// Number of distinct components given a label array.
pub fn num_components(labels: &[u32]) -> usize {
    labels
        .iter()
        .enumerate()
        .filter(|&(i, &l)| i as u32 == l)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use julienne_graph::builder::from_pairs_symmetric;
    use julienne_graph::generators::{erdos_renyi, grid2d};

    #[test]
    fn two_components() {
        let g = from_pairs_symmetric(6, &[(0, 1), (1, 2), (3, 4)]);
        let r = connected_components(&g);
        assert_eq!(r.label, vec![0, 0, 0, 3, 3, 5]);
        assert_eq!(num_components(&r.label), 3);
    }

    #[test]
    fn matches_union_find_on_random() {
        for seed in 0..3 {
            let g = erdos_renyi(1_000, 1_500, seed, true); // sparse: many comps
            let par = connected_components(&g);
            let seq = connected_components_seq(&g);
            assert_eq!(par.label, seq, "seed {seed}");
        }
    }

    #[test]
    fn grid_is_one_component_with_diameter_rounds() {
        let g = grid2d(20, 20);
        let r = connected_components(&g);
        assert_eq!(num_components(&r.label), 1);
        assert!(r.label.iter().all(|&l| l == 0));
        // Rounds bounded by diameter + 2.
        assert!(r.rounds <= 40);
    }

    #[test]
    fn isolated_vertices_self_labeled() {
        let g = from_pairs_symmetric(4, &[]);
        let r = connected_components(&g);
        assert_eq!(r.label, vec![0, 1, 2, 3]);
        assert_eq!(num_components(&r.label), 4);
    }
}
