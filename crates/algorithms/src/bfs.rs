//! Breadth-first search — the one-bucket special case of bucketing (the
//! paper's canonical frontier-based algorithm), used by examples and the
//! edgeMap ablation.

use julienne_graph::VertexId;
use julienne_ligra::edge_map::{EdgeMap, Mode};
use julienne_ligra::subset::VertexSubset;
use julienne_ligra::traits::{GraphRef, OutEdges};
use julienne_primitives::atomics::cas_u32;
use std::sync::atomic::{AtomicU32, Ordering};

/// Parent of unreached vertices.
pub const NO_PARENT: u32 = u32::MAX;

/// BFS result: parent pointers and hop distances.
#[derive(Clone, Debug)]
pub struct BfsResult {
    /// Parent of each vertex in the BFS tree (`NO_PARENT` if unreached;
    /// the source is its own parent).
    pub parent: Vec<u32>,
    /// Hop distance from the source (`u32::MAX` if unreached).
    pub level: Vec<u32>,
    /// Number of frontier rounds (= eccentricity of the source + 1).
    pub rounds: u64,
}

/// Direction-optimized BFS from `src`, over any [`GraphRef`] backend.
pub fn bfs<G: GraphRef>(g: &G, src: VertexId) -> BfsResult {
    bfs_with_mode(g, src, Mode::Auto)
}

/// BFS with a forced traversal mode (for the A3 ablation).
pub fn bfs_with_mode<G: GraphRef>(g: &G, src: VertexId, mode: Mode) -> BfsResult {
    let n = g.num_vertices();
    let parent: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(NO_PARENT)).collect();
    let level: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(u32::MAX)).collect();
    parent[src as usize].store(src, Ordering::SeqCst);
    level[src as usize].store(0, Ordering::SeqCst);

    let mut frontier = VertexSubset::single(n, src);
    let mut rounds = 0u64;
    let mut depth = 0u32;
    while !frontier.is_empty() {
        rounds += 1;
        depth += 1;
        frontier = EdgeMap::new(g).mode(mode).run(
            &frontier,
            |u, v, _| {
                if cas_u32(&parent[v as usize], NO_PARENT, u) {
                    level[v as usize].store(depth, Ordering::SeqCst);
                    true
                } else {
                    false
                }
            },
            |v| parent[v as usize].load(Ordering::SeqCst) == NO_PARENT,
        );
    }

    BfsResult {
        parent: parent.into_iter().map(AtomicU32::into_inner).collect(),
        level: level.into_iter().map(AtomicU32::into_inner).collect(),
        rounds,
    }
}

/// Sequential reference BFS (queue-based), used as the test oracle.
pub fn bfs_seq<G: OutEdges>(g: &G, src: VertexId) -> Vec<u32> {
    let n = g.num_vertices();
    let mut level = vec![u32::MAX; n];
    level[src as usize] = 0;
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        let next = level[u as usize] + 1;
        g.for_each_out(u, |v, _| {
            if level[v as usize] == u32::MAX {
                level[v as usize] = next;
                queue.push_back(v);
            }
        });
    }
    level
}

#[cfg(test)]
mod tests {
    use super::*;
    use julienne_graph::builder::from_pairs_symmetric;
    use julienne_graph::generators::{erdos_renyi, grid2d};

    #[test]
    fn levels_match_sequential_on_grid() {
        let g = grid2d(20, 30);
        let par = bfs(&g, 0);
        let seq = bfs_seq(&g, 0);
        assert_eq!(par.level, seq);
        // Eccentricity of corner = rows+cols-2 = 48; rounds = 49.
        assert_eq!(par.rounds, 49);
    }

    #[test]
    fn all_modes_agree() {
        let g = erdos_renyi(500, 4000, 7, true);
        let seq = bfs_seq(&g, 3);
        for mode in [Mode::Sparse, Mode::Dense, Mode::Auto] {
            let r = bfs_with_mode(&g, 3, mode);
            assert_eq!(r.level, seq, "{mode:?}");
        }
    }

    #[test]
    fn parents_form_a_valid_tree() {
        let g = erdos_renyi(300, 2000, 5, true);
        let r = bfs(&g, 0);
        for v in 0..300u32 {
            let p = r.parent[v as usize];
            if p == NO_PARENT {
                assert_eq!(r.level[v as usize], u32::MAX);
            } else if v == 0 {
                assert_eq!(p, 0);
            } else {
                // Parent is one level closer and adjacent.
                assert_eq!(r.level[p as usize] + 1, r.level[v as usize]);
                assert!(g.neighbors(p).contains(&v));
            }
        }
    }

    #[test]
    fn disconnected_component_unreached() {
        let g = from_pairs_symmetric(4, &[(0, 1), (2, 3)]);
        let r = bfs(&g, 0);
        assert_eq!(r.level, vec![0, 1, u32::MAX, u32::MAX]);
    }
}
