//! The workspace algorithm registry: one table mapping algorithm ids to
//! typed entry points, shared by the CLI and the query server.
//!
//! Each [`AlgorithmSpec`] adapts string parameters (from a command line or
//! a wire request) into the module's typed params struct, runs the
//! algorithm against whichever [`GraphStore`] backend is loaded, and
//! renders the same human-readable report the CLI has always printed —
//! byte-for-byte, so a served query and a direct invocation are
//! interchangeable. Every run receives a [`QueryCtx`]; bucketed algorithms
//! poll it at round boundaries, the rest check it before starting.
//!
//! ```
//! use julienne_algorithms::registry::{GraphStore, ParamMap, Registry};
//! use julienne::prelude::{Backend, QueryCtx};
//! use std::sync::Arc;
//!
//! let g = julienne_graph::builder::from_pairs_symmetric(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
//! let store = GraphStore::Csr(Arc::new(g));
//! let out = Registry::standard()
//!     .run("kcore", &store, &ParamMap::default(), &QueryCtx::default())
//!     .unwrap();
//! assert!(out.starts_with("k_max=2"));
//! ```

use crate::bellman_ford::bellman_ford;
use crate::clustering::{local_clustering, transitivity};
use crate::components::{connected_components, num_components};
use crate::degeneracy::densest_subgraph;
use crate::dijkstra::dijkstra;
use crate::kcore::{coreness, KcoreParams};
use crate::ktruss::ktruss_julienne;
use crate::pagerank::pagerank;
use crate::setcover::{cover, verify_cover, SetCoverParams};
use crate::triangles::triangle_count;
use crate::{delta_stepping, delta_stepping::SsspParams};
use julienne::prelude::{Backend, QueryCtx};
use julienne::Error;
use julienne_graph::compress::{CompressedGraph, CompressedWGraph};
use julienne_graph::container::{self, MappedGraph};
use julienne_graph::io::{Format, GraphIo, IoOptions};
use julienne_graph::{Graph, WGraph};
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::path::Path;
use std::sync::{Arc, OnceLock};

/// The loaded input a query runs against: a CSR, byte-compressed, or
/// memory-mapped graph, weighted or not, behind an [`Arc`] so many
/// concurrent queries can share one immutable copy. [`GraphStore::Empty`]
/// serves algorithms that build their own input (set cover generates its
/// instance from parameters); it still records the requested backend so the
/// instance can be routed through the compressed representation.
#[derive(Clone)]
pub enum GraphStore {
    /// Unweighted CSR.
    Csr(Arc<Graph>),
    /// Weighted (`u32`) CSR.
    WCsr(Arc<WGraph>),
    /// Unweighted byte-compressed graph.
    Compressed(Arc<CompressedGraph>),
    /// Weighted byte-compressed graph.
    WCompressed(Arc<CompressedWGraph>),
    /// Unweighted graph served zero-copy from a mapped `.jgr` file.
    Mapped(Arc<MappedGraph<()>>),
    /// Weighted graph served zero-copy from a mapped `.jgr` file.
    WMapped(Arc<MappedGraph<u32>>),
    /// No graph loaded; `backend` still routes generated instances.
    Empty {
        /// Requested representation for generated inputs.
        backend: Backend,
    },
}

impl GraphStore {
    /// Builds a store from an unweighted CSR, compressing if requested.
    ///
    /// [`Backend::Mapped`] falls back to CSR here: an in-memory graph
    /// (generated, or parsed from text) has no backing file to map. File
    /// loads route through [`GraphStore::open`], which does map.
    pub fn from_graph(g: Graph, backend: Backend) -> GraphStore {
        match backend {
            Backend::Csr | Backend::Mapped => GraphStore::Csr(Arc::new(g)),
            Backend::Compressed => GraphStore::Compressed(Arc::new(CompressedGraph::from_csr(&g))),
        }
    }

    /// Builds a store from a weighted CSR, compressing if requested.
    /// [`Backend::Mapped`] falls back to CSR, as in
    /// [`GraphStore::from_graph`].
    pub fn from_weighted(g: WGraph, backend: Backend) -> GraphStore {
        match backend {
            Backend::Csr | Backend::Mapped => GraphStore::WCsr(Arc::new(g)),
            Backend::Compressed => {
                GraphStore::WCompressed(Arc::new(CompressedWGraph::from_csr(&g)))
            }
        }
    }

    /// Loads a graph file into the representation `backend` asks for — the
    /// one load path the CLI and server share.
    ///
    /// * [`Backend::Csr`]: any supported format via [`GraphIo`].
    /// * [`Backend::Compressed`]: a `.jgr` container with an embedded
    ///   compressed payload loads the pre-encoded blocks verbatim; anything
    ///   else is read as CSR and byte-compressed in memory.
    /// * [`Backend::Mapped`]: the file **must** be a `.jgr` container —
    ///   mapping is meaningless for formats that need parsing — and is
    ///   served zero-copy with no per-edge work before the first query.
    pub fn open(path: &Path, weighted: bool, backend: Backend) -> Result<GraphStore, Error> {
        let fmt = Format::detect(path)?;
        match backend {
            Backend::Mapped => {
                if fmt != Format::Container {
                    return Err(Error::usage(format!(
                        "backend=mapped requires a .jgr container, but {} is {fmt}; \
                         run `julienne convert` first",
                        path.display()
                    )));
                }
                if weighted {
                    Ok(GraphStore::WMapped(Arc::new(MappedGraph::open(path)?)))
                } else {
                    Ok(GraphStore::Mapped(Arc::new(MappedGraph::open(path)?)))
                }
            }
            Backend::Compressed => {
                if fmt == Format::Container && container::peek(path)?.has_compressed {
                    return Ok(if weighted {
                        GraphStore::WCompressed(Arc::new(container::read_compressed_weighted(
                            path,
                        )?))
                    } else {
                        GraphStore::Compressed(Arc::new(container::read_compressed(path)?))
                    });
                }
                let opts = IoOptions {
                    format: Some(fmt),
                    ..Default::default()
                };
                Ok(if weighted {
                    GraphStore::WCompressed(Arc::new(CompressedWGraph::from_csr(&GraphIo::read(
                        path, &opts,
                    )?)))
                } else {
                    GraphStore::Compressed(Arc::new(CompressedGraph::from_csr(&GraphIo::read(
                        path, &opts,
                    )?)))
                })
            }
            Backend::Csr => {
                let opts = IoOptions {
                    format: Some(fmt),
                    ..Default::default()
                };
                Ok(if weighted {
                    GraphStore::WCsr(Arc::new(GraphIo::read(path, &opts)?))
                } else {
                    GraphStore::Csr(Arc::new(GraphIo::read(path, &opts)?))
                })
            }
        }
    }

    /// Which in-memory representation this store holds.
    pub fn backend(&self) -> Backend {
        match self {
            GraphStore::Csr(_) | GraphStore::WCsr(_) => Backend::Csr,
            GraphStore::Compressed(_) | GraphStore::WCompressed(_) => Backend::Compressed,
            GraphStore::Mapped(_) | GraphStore::WMapped(_) => Backend::Mapped,
            GraphStore::Empty { backend } => *backend,
        }
    }

    /// Whether the store carries edge weights.
    pub fn is_weighted(&self) -> bool {
        matches!(
            self,
            GraphStore::WCsr(_) | GraphStore::WCompressed(_) | GraphStore::WMapped(_)
        )
    }

    /// Vertex count (0 when empty).
    pub fn num_vertices(&self) -> usize {
        match self {
            GraphStore::Csr(g) => g.num_vertices(),
            GraphStore::WCsr(g) => g.num_vertices(),
            GraphStore::Compressed(g) => g.num_vertices(),
            GraphStore::WCompressed(g) => g.num_vertices(),
            GraphStore::Mapped(g) => g.num_vertices(),
            GraphStore::WMapped(g) => g.num_vertices(),
            GraphStore::Empty { .. } => 0,
        }
    }

    /// Directed edge count (0 when empty).
    pub fn num_edges(&self) -> usize {
        match self {
            GraphStore::Csr(g) => g.num_edges(),
            GraphStore::WCsr(g) => g.num_edges(),
            GraphStore::Compressed(g) => g.num_edges(),
            GraphStore::WCompressed(g) => g.num_edges(),
            GraphStore::Mapped(g) => g.num_edges(),
            GraphStore::WMapped(g) => g.num_edges(),
            GraphStore::Empty { .. } => 0,
        }
    }

    /// Whether the stored graph is symmetric (false when empty).
    pub fn is_symmetric(&self) -> bool {
        match self {
            GraphStore::Csr(g) => g.is_symmetric(),
            GraphStore::WCsr(g) => g.is_symmetric(),
            GraphStore::Compressed(g) => g.is_symmetric(),
            GraphStore::WCompressed(g) => g.is_symmetric(),
            GraphStore::Mapped(g) => g.is_symmetric(),
            GraphStore::WMapped(g) => g.is_symmetric(),
            GraphStore::Empty { .. } => false,
        }
    }

    fn require_nonempty(&self) -> Result<(), Error> {
        if self.num_vertices() == 0 {
            Err(Error::input(
                "graph is empty (0 vertices); nothing to compute",
            ))
        } else {
            Ok(())
        }
    }

    fn require_symmetric(&self, msg: &str) -> Result<(), Error> {
        if self.is_symmetric() {
            Ok(())
        } else {
            Err(Error::input(msg))
        }
    }
}

impl std::fmt::Debug for GraphStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "GraphStore({:?}, weighted={}, n={}, m={})",
            self.backend(),
            self.is_weighted(),
            self.num_vertices(),
            self.num_edges()
        )
    }
}

/// Binds `$g` to whatever graph `$store` holds and evaluates `$body` —
/// the algorithms are generic over the graph traits, so one body serves
/// all six representations.
macro_rules! any_graph {
    ($store:expr, $id:expr, |$g:ident| $body:expr) => {
        match $store {
            GraphStore::Csr(g) => {
                let $g = g.as_ref();
                $body
            }
            GraphStore::WCsr(g) => {
                let $g = g.as_ref();
                $body
            }
            GraphStore::Compressed(g) => {
                let $g = g.as_ref();
                $body
            }
            GraphStore::WCompressed(g) => {
                let $g = g.as_ref();
                $body
            }
            GraphStore::Mapped(g) => {
                let $g = g.as_ref();
                $body
            }
            GraphStore::WMapped(g) => {
                let $g = g.as_ref();
                $body
            }
            GraphStore::Empty { .. } => {
                return Err(Error::input(format!("{} requires a graph input", $id)))
            }
        }
    };
}

/// Like [`any_graph!`], restricted to the weighted representations.
macro_rules! weighted_graph {
    ($store:expr, $id:expr, |$g:ident| $body:expr) => {
        match $store {
            GraphStore::WCsr(g) => {
                let $g = g.as_ref();
                $body
            }
            GraphStore::WCompressed(g) => {
                let $g = g.as_ref();
                $body
            }
            GraphStore::WMapped(g) => {
                let $g = g.as_ref();
                $body
            }
            _ => {
                return Err(Error::input(format!(
                    "{} requires a weighted graph input",
                    $id
                )))
            }
        }
    };
}

/// String-keyed parameters with typed getters and unknown-key rejection —
/// the bridge from a command line or wire request to each module's typed
/// params struct. Getters record which keys were read; [`ParamMap::finish`]
/// rejects the rest, so a typo is a usage error rather than a silently
/// ignored option.
#[derive(Debug, Default)]
pub struct ParamMap {
    map: BTreeMap<String, String>,
    used: RefCell<BTreeSet<String>>,
}

impl ParamMap {
    /// Builds a map from `(key, value)` pairs; later duplicates win.
    pub fn from_pairs<I, K, V>(pairs: I) -> ParamMap
    where
        I: IntoIterator<Item = (K, V)>,
        K: Into<String>,
        V: Into<String>,
    {
        ParamMap {
            map: pairs
                .into_iter()
                .map(|(k, v)| (k.into(), v.into()))
                .collect(),
            used: RefCell::new(BTreeSet::new()),
        }
    }

    /// Inserts or replaces one parameter.
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.map.insert(key.into(), value.into());
    }

    fn raw(&self, key: &str) -> Option<&str> {
        let v = self.map.get(key).map(String::as_str);
        if v.is_some() {
            self.used.borrow_mut().insert(key.to_string());
        }
        v
    }

    /// An optional string parameter with default.
    pub fn string_or(&self, key: &str, default: &str) -> String {
        self.raw(key).unwrap_or(default).to_string()
    }

    /// An optional typed parameter with default; a value that fails to
    /// parse is a usage error naming the offending key and value.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, Error> {
        match self.raw(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| Error::usage(format!("option {key}={v:?} has the wrong type"))),
        }
    }

    /// Canonical cache/coalesce rendering of the full map: `key=value`
    /// pairs joined by a single space, keys sorted (the map is a
    /// `BTreeMap`, so iteration order is already canonical). Keys named in
    /// `float_params` have their values parsed as `f64` and re-rendered via
    /// `Display` (the shortest round-trip form), so `damping=0.850` and
    /// `damping=0.85` produce one key. A float that parses to NaN is
    /// rejected with a typed input error — NaN never equals itself, so it
    /// can neither key a cache nor coalesce a batch. Unparsable float
    /// values pass through verbatim: they fail later, at parameter
    /// validation, with the usual usage error.
    ///
    /// Does not mark any key as used: canonicalization is an admission
    /// concern, not parameter consumption.
    pub fn canonical_key(&self, float_params: &[&str]) -> Result<String, Error> {
        let mut out = String::new();
        for (k, v) in &self.map {
            if !out.is_empty() {
                out.push(' ');
            }
            out.push_str(k);
            out.push('=');
            match v.parse::<f64>() {
                Ok(f) if float_params.contains(&k.as_str()) => {
                    if f.is_nan() {
                        return Err(Error::input(format!(
                            "option {k}=NaN is not a number; NaN parameters are rejected at \
                             admission"
                        )));
                    }
                    let _ = write!(out, "{f}");
                }
                _ => out.push_str(v),
            }
        }
        Ok(out)
    }

    /// Rejects any parameters no getter touched.
    pub fn finish(&self, id: &str) -> Result<(), Error> {
        let used = self.used.borrow();
        let unknown: Vec<&str> = self
            .map
            .keys()
            .map(String::as_str)
            .filter(|k| !used.contains(*k))
            .collect();
        if unknown.is_empty() {
            Ok(())
        } else {
            Err(Error::usage(format!(
                "unknown options for {id}: {}",
                unknown.join(", ")
            )))
        }
    }
}

/// What input representation an algorithm consumes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GraphNeeds {
    /// Any loaded graph (weights, if present, are ignored).
    Unweighted,
    /// A weighted graph.
    Weighted,
    /// No graph — the algorithm generates its own input from parameters.
    None,
}

/// Relative cost class of an algorithm, declared per registry entry and
/// consumed by the serve scheduler's priority policy: cheaper classes are
/// admitted first so a burst of expensive queries cannot starve cheap ones.
/// The ordering is the admission order (`Cheap < Moderate < Expensive`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CostClass {
    /// Near-linear single passes (components, PageRank iterations).
    Cheap,
    /// Bucketed traversals over the whole graph (k-core, SSSP).
    Moderate,
    /// Super-linear work (triangle counting, trussness, clustering).
    Expensive,
}

impl CostClass {
    /// Lower-case wire/CLI rendering.
    pub fn as_str(self) -> &'static str {
        match self {
            CostClass::Cheap => "cheap",
            CostClass::Moderate => "moderate",
            CostClass::Expensive => "expensive",
        }
    }
}

/// How the serve-path coalescer may fuse compatible queued queries of one
/// algorithm (same canonical parameters modulo the batch axis, same graph
/// epoch).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchKind {
    /// Never fused; every query runs solo.
    None,
    /// The result depends only on (params, epoch): one run fans out to all
    /// waiters with identical pending queries.
    WholeGraph,
    /// `sssp` with `algo=delta|wbfs`: queries differing only in `src`
    /// fuse into one multi-source traversal with per-source frontier
    /// lanes ([`crate::multi_source::sssp_multi`]). The `bellman` and
    /// `dijkstra` variants are not lane-fusable and coalesce as
    /// [`BatchKind::WholeGraph`] does (identical params only).
    MultiSourceSssp,
}

type RunFn = fn(&GraphStore, &ParamMap, &QueryCtx) -> Result<String, Error>;

/// One registered algorithm: id, input contract, scheduling metadata, and
/// the adapter that runs it from string parameters.
pub struct AlgorithmSpec {
    /// Registry id (the CLI subcommand and the wire `algo` field).
    pub id: &'static str,
    /// Input contract.
    pub needs: GraphNeeds,
    /// One-line description.
    pub summary: &'static str,
    /// Admission cost class for the serve scheduler's priority policy.
    pub cost: CostClass,
    /// How the serve coalescer may fuse compatible queued queries.
    pub batch: BatchKind,
    /// Parameters holding floats, canonicalized (and NaN-checked) by
    /// [`ParamMap::canonical_key`] before they key a cache entry or a
    /// coalesce group.
    pub float_params: &'static [&'static str],
    run: RunFn,
}

impl AlgorithmSpec {
    /// Runs the algorithm. Parameters are validated first (usage errors),
    /// then input-shape checks (input errors), then the algorithm itself,
    /// which polls `ctx` at round boundaries.
    pub fn run(
        &self,
        store: &GraphStore,
        params: &ParamMap,
        ctx: &QueryCtx,
    ) -> Result<String, Error> {
        (self.run)(store, params, ctx)
    }

    /// Canonical rendering of `params` for cache keys and coalesce groups,
    /// with this spec's float parameters normalized and NaN rejected (a
    /// typed input error).
    pub fn canonical_params(&self, params: &ParamMap) -> Result<String, Error> {
        params.canonical_key(self.float_params)
    }
}

/// The algorithm table. [`Registry::standard`] is the process-wide
/// instance both the CLI and the server dispatch through.
pub struct Registry {
    by_id: BTreeMap<&'static str, AlgorithmSpec>,
}

impl Registry {
    /// The standard table of the nine query algorithms.
    pub fn standard() -> &'static Registry {
        static STANDARD: OnceLock<Registry> = OnceLock::new();
        STANDARD.get_or_init(|| {
            let specs = [
                AlgorithmSpec {
                    id: "kcore",
                    needs: GraphNeeds::Unweighted,
                    summary: "coreness of every vertex via work-efficient peeling",
                    cost: CostClass::Moderate,
                    batch: BatchKind::WholeGraph,
                    float_params: &[],
                    run: run_kcore,
                },
                AlgorithmSpec {
                    id: "sssp",
                    needs: GraphNeeds::Weighted,
                    summary: "single-source shortest paths (delta|wbfs|bellman|dijkstra)",
                    cost: CostClass::Moderate,
                    batch: BatchKind::MultiSourceSssp,
                    float_params: &[],
                    run: run_sssp,
                },
                AlgorithmSpec {
                    id: "components",
                    needs: GraphNeeds::Unweighted,
                    summary: "connected components by label propagation",
                    cost: CostClass::Cheap,
                    batch: BatchKind::WholeGraph,
                    float_params: &[],
                    run: run_components,
                },
                AlgorithmSpec {
                    id: "densest",
                    needs: GraphNeeds::Unweighted,
                    summary: "Charikar 2-approximate densest subgraph via peeling",
                    cost: CostClass::Cheap,
                    batch: BatchKind::WholeGraph,
                    float_params: &[],
                    run: run_densest,
                },
                AlgorithmSpec {
                    id: "triangles",
                    needs: GraphNeeds::Unweighted,
                    summary: "exact triangle count",
                    cost: CostClass::Expensive,
                    batch: BatchKind::WholeGraph,
                    float_params: &[],
                    run: run_triangles,
                },
                AlgorithmSpec {
                    id: "truss",
                    needs: GraphNeeds::Unweighted,
                    summary: "k-truss decomposition via edge peeling",
                    cost: CostClass::Expensive,
                    batch: BatchKind::WholeGraph,
                    float_params: &[],
                    run: run_truss,
                },
                AlgorithmSpec {
                    id: "clustering",
                    needs: GraphNeeds::Unweighted,
                    summary: "transitivity and average local clustering",
                    cost: CostClass::Expensive,
                    batch: BatchKind::WholeGraph,
                    float_params: &[],
                    run: run_clustering,
                },
                AlgorithmSpec {
                    id: "pagerank",
                    needs: GraphNeeds::Unweighted,
                    summary: "PageRank by power iteration",
                    cost: CostClass::Cheap,
                    batch: BatchKind::WholeGraph,
                    float_params: &["damping"],
                    run: run_pagerank,
                },
                AlgorithmSpec {
                    id: "setcover",
                    needs: GraphNeeds::None,
                    summary: "bucketed MaNIS set cover on a generated instance",
                    cost: CostClass::Moderate,
                    batch: BatchKind::WholeGraph,
                    float_params: &["eps"],
                    run: run_setcover,
                },
            ];
            Registry {
                by_id: specs.into_iter().map(|s| (s.id, s)).collect(),
            }
        })
    }

    /// Looks up a spec by id.
    pub fn get(&self, id: &str) -> Option<&AlgorithmSpec> {
        self.by_id.get(id)
    }

    /// All registered ids, sorted.
    pub fn ids(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.by_id.keys().copied()
    }

    /// Dispatches `id` through the table. The context is checked before
    /// any work: a query cancelled while queued never starts.
    pub fn run(
        &self,
        id: &str,
        store: &GraphStore,
        params: &ParamMap,
        ctx: &QueryCtx,
    ) -> Result<String, Error> {
        let spec = self
            .get(id)
            .ok_or_else(|| Error::usage(format!("unknown algorithm {id:?}")))?;
        ctx.check()?;
        spec.run(store, params, ctx)
    }
}

fn run_kcore(store: &GraphStore, p: &ParamMap, ctx: &QueryCtx) -> Result<String, Error> {
    let top: usize = p.get_or("top", 10)?;
    p.finish("kcore")?;
    store.require_nonempty()?;
    store.require_symmetric("k-core requires a symmetric graph (use convert symmetrize=true)")?;
    let r = any_graph!(store, "kcore", |g| coreness(
        g,
        &KcoreParams::default(),
        ctx
    ))?;
    let k_max = r.coreness.iter().copied().max().unwrap_or(0);
    let mut by_core: Vec<(u32, u32)> = r
        .coreness
        .iter()
        .enumerate()
        .map(|(v, &c)| (c, v as u32))
        .collect();
    by_core.sort_unstable_by(|a, b| b.cmp(a));
    let mut out = format!(
        "k_max={k_max} rounds={} moves={}\n",
        r.rounds, r.identifiers_moved
    );
    let _ = writeln!(out, "top vertices by coreness:");
    for (c, v) in by_core.into_iter().take(top) {
        let _ = writeln!(out, "  v{v}: coreness {c}");
    }
    if ctx.emit_stats() {
        let _ = writeln!(out, "{}", ctx.snapshot().to_json("kcore"));
    }
    Ok(out)
}

/// Parsed and validated `sssp` parameters, shared by the solo adapter and
/// the fused batch entry so both reject bad input with byte-identical
/// errors.
struct SsspRequest {
    src: u32,
    delta: u64,
    algo: String,
}

fn parse_sssp(store: &GraphStore, p: &ParamMap) -> Result<SsspRequest, Error> {
    let src: u32 = p.get_or("src", 0)?;
    let delta: u64 = p.get_or("delta", 32768)?;
    if delta == 0 {
        return Err(Error::usage(
            "delta=0 is invalid; the bucket width must be >= 1",
        ));
    }
    let algo = p.string_or("algo", "delta");
    p.finish("sssp")?;
    store.require_nonempty()?;
    if src as usize >= store.num_vertices() {
        return Err(Error::input(format!(
            "src {src} out of range (n = {})",
            store.num_vertices()
        )));
    }
    Ok(SsspRequest { src, delta, algo })
}

/// The one `sssp` report renderer: solo runs, fused lanes, and cached
/// bodies all come out of this formatter, so they are byte-comparable.
fn render_sssp(algo: &str, src: u32, n: usize, dist: &[u64], rounds: u64) -> String {
    let reached = dist.iter().filter(|&&d| d != u64::MAX).count();
    let max = dist
        .iter()
        .filter(|&&d| d != u64::MAX)
        .max()
        .copied()
        .unwrap_or(0);
    format!("algo={algo} src={src} reached={reached}/{n} max_dist={max} rounds={rounds}\n")
}

fn run_sssp(store: &GraphStore, p: &ParamMap, ctx: &QueryCtx) -> Result<String, Error> {
    let SsspRequest { src, delta, algo } = parse_sssp(store, p)?;
    let (dist, rounds) = weighted_graph!(store, "sssp", |g| match algo.as_str() {
        "delta" => {
            let r = delta_stepping::sssp(g, &SsspParams { src, delta }, ctx)?;
            (r.dist, r.rounds)
        }
        "wbfs" => {
            let r = delta_stepping::sssp(g, &SsspParams { src, delta: 1 }, ctx)?;
            (r.dist, r.rounds)
        }
        "bellman" => {
            ctx.check()?;
            let r = bellman_ford(g, src);
            (r.dist, r.rounds)
        }
        "dijkstra" => {
            ctx.check()?;
            (dijkstra(g, src), 0)
        }
        other => return Err(Error::usage(format!("unknown algo {other:?}"))),
    });
    let mut out = render_sssp(&algo, src, store.num_vertices(), &dist, rounds);
    if ctx.emit_stats() {
        let _ = writeln!(out, "{}", ctx.snapshot().to_json(&format!("sssp_{algo}")));
    }
    Ok(out)
}

/// Runs a coalesced batch of `sssp` queries as **one fused multi-source
/// traversal** ([`crate::multi_source::sssp_multi`]), one frontier lane per
/// member. Every member must be an `algo=delta|wbfs` query with the same
/// effective Δ against the same store; members differ only in `src`.
///
/// Returns one slot per member, in order: `Ok(report)` rendered through the
/// same formatter as [`Registry::run`] (so bodies are byte-identical to
/// solo runs), or that member's own lifecycle/validation error. The outer
/// `Err` means the batch as a whole could not be fused — mixed Δ or algo
/// variants, a non-fusable variant, an unweighted store, or a lane count
/// that overflows the fused identifier space — and the caller should fall
/// back to running the members solo.
///
/// Members whose parameters fail validation (bad `src`, unknown option)
/// get their validation error in their slot and do not join the traversal;
/// they never poison sibling members.
pub fn run_sssp_batch(
    store: &GraphStore,
    members: &[(&ParamMap, &QueryCtx)],
) -> Result<Vec<Result<String, Error>>, Error> {
    use crate::multi_source::{sssp_multi, SsspLane};
    if members.is_empty() {
        return Ok(Vec::new());
    }
    let parsed: Vec<Result<SsspRequest, Error>> =
        members.iter().map(|(p, _)| parse_sssp(store, p)).collect();
    let mut fused_delta: Option<(String, u64)> = None;
    for req in parsed.iter().flatten() {
        let eff = match req.algo.as_str() {
            "delta" => req.delta,
            "wbfs" => 1,
            other => {
                return Err(Error::usage(format!(
                    "sssp algo={other:?} is not lane-fusable"
                )))
            }
        };
        match &fused_delta {
            None => fused_delta = Some((req.algo.clone(), eff)),
            Some((algo, delta)) if *algo == req.algo && *delta == eff => {}
            Some(_) => {
                return Err(Error::usage(
                    "sssp batch members disagree on algo/delta; cannot fuse",
                ))
            }
        }
    }
    let Some((algo, delta)) = fused_delta else {
        // Nothing valid to fuse; report the per-member validation errors.
        return Ok(parsed
            .into_iter()
            .map(|r| r.map(|_| String::new()))
            .collect());
    };
    let lanes_idx: Vec<usize> = (0..members.len()).filter(|&i| parsed[i].is_ok()).collect();
    let lane_results = weighted_graph!(store, "sssp", |g| {
        let lanes: Vec<SsspLane<'_>> = lanes_idx
            .iter()
            .map(|&i| SsspLane {
                src: parsed[i].as_ref().unwrap().src,
                ctx: members[i].1,
            })
            .collect();
        sssp_multi(g, delta, &lanes)?
    });
    let srcs: Vec<Option<u32>> = parsed
        .iter()
        .map(|r| r.as_ref().ok().map(|q| q.src))
        .collect();
    let mut out: Vec<Result<String, Error>> = parsed
        .into_iter()
        .map(|r| r.map(|_| String::new()))
        .collect();
    let n = store.num_vertices();
    for (&i, lane) in lanes_idx.iter().zip(lane_results) {
        let src = srcs[i].expect("lane index points at a validated member");
        out[i] = lane.map(|r| render_sssp(&algo, src, n, &r.dist, r.rounds));
    }
    Ok(out)
}

fn run_components(store: &GraphStore, p: &ParamMap, ctx: &QueryCtx) -> Result<String, Error> {
    p.finish("components")?;
    store.require_nonempty()?;
    store.require_symmetric("components requires a symmetric graph")?;
    ctx.check()?;
    let r = any_graph!(store, "components", |g| connected_components(g));
    Ok(format!(
        "components={} rounds={}\n",
        num_components(&r.label),
        r.rounds
    ))
}

fn run_densest(store: &GraphStore, p: &ParamMap, ctx: &QueryCtx) -> Result<String, Error> {
    p.finish("densest")?;
    store.require_nonempty()?;
    store.require_symmetric("densest requires a symmetric graph")?;
    ctx.check()?;
    let ds = any_graph!(store, "densest", |g| densest_subgraph(g));
    Ok(format!(
        "densest subgraph: {} vertices, density {:.3}\n",
        ds.vertices.len(),
        ds.density
    ))
}

fn run_triangles(store: &GraphStore, p: &ParamMap, ctx: &QueryCtx) -> Result<String, Error> {
    p.finish("triangles")?;
    store.require_nonempty()?;
    store.require_symmetric("triangle counting requires a symmetric graph")?;
    ctx.check()?;
    let t = any_graph!(store, "triangles", |g| triangle_count(g));
    Ok(format!("triangles={t}\n"))
}

fn run_truss(store: &GraphStore, p: &ParamMap, ctx: &QueryCtx) -> Result<String, Error> {
    let top: usize = p.get_or("top", 5)?;
    p.finish("truss")?;
    store.require_nonempty()?;
    store.require_symmetric("k-truss requires a symmetric graph")?;
    ctx.check()?;
    let r = any_graph!(store, "truss", |g| ktruss_julienne(g));
    let mut out = format!(
        "edges={} max_truss={} rounds={}\n",
        r.trussness.len(),
        r.max_truss,
        r.rounds
    );
    let mut by_truss: Vec<(u32, usize)> = r
        .trussness
        .iter()
        .copied()
        .map(|t| (t, 1))
        .fold(BTreeMap::new(), |mut m: BTreeMap<u32, usize>, (t, c)| {
            *m.entry(t).or_default() += c;
            m
        })
        .into_iter()
        .collect();
    by_truss.reverse();
    let _ = writeln!(out, "edges per trussness (top {top} levels):");
    for (t, c) in by_truss.into_iter().take(top) {
        let _ = writeln!(out, "  trussness {t}: {c} edges");
    }
    Ok(out)
}

fn run_clustering(store: &GraphStore, p: &ParamMap, ctx: &QueryCtx) -> Result<String, Error> {
    p.finish("clustering")?;
    store.require_nonempty()?;
    store.require_symmetric("clustering requires a symmetric graph")?;
    ctx.check()?;
    let (local, trans) = any_graph!(store, "clustering", |g| (
        local_clustering(g),
        transitivity(g)
    ));
    let avg = local.iter().sum::<f64>() / local.len().max(1) as f64;
    Ok(format!(
        "transitivity={trans:.6} avg_local_clustering={avg:.6}\n"
    ))
}

fn run_pagerank(store: &GraphStore, p: &ParamMap, ctx: &QueryCtx) -> Result<String, Error> {
    let damping: f64 = p.get_or("damping", 0.85)?;
    if !(0.0..=1.0).contains(&damping) {
        return Err(Error::usage(format!(
            "damping={damping} out of range (expected 0 <= damping <= 1)"
        )));
    }
    let iters: u32 = p.get_or("iters", 100)?;
    p.finish("pagerank")?;
    store.require_nonempty()?;
    ctx.check()?;
    let r = any_graph!(store, "pagerank", |g| pagerank(g, damping, 1e-9, iters));
    let mut top: Vec<(usize, f64)> = r.rank.iter().copied().enumerate().collect();
    top.sort_by(|a, b| b.1.total_cmp(&a.1));
    let mut out = format!("iterations={}\n", r.iterations);
    let _ = writeln!(out, "top vertices by rank:");
    for (v, score) in top.into_iter().take(5) {
        let _ = writeln!(out, "  v{v}: {score:.6}");
    }
    Ok(out)
}

fn run_setcover(store: &GraphStore, p: &ParamMap, ctx: &QueryCtx) -> Result<String, Error> {
    let sets: usize = p.get_or("sets", 256)?;
    let elements: usize = p.get_or("elements", 16_384)?;
    let mult: usize = p.get_or("mult", 4)?;
    let eps: f64 = p.get_or("eps", 0.01)?;
    let seed: u64 = p.get_or("seed", 1)?;
    p.finish("setcover")?;
    let mut inst = julienne_graph::generators::set_cover_instance(sets, elements, mult, seed);
    if store.backend() == Backend::Compressed {
        // Set cover peels a packed (mutable) copy of the membership graph,
        // so the compressed backend routes the instance through a
        // compress/decompress round trip — same adjacency, proving the
        // byte-coded form carries the full structure.
        inst.graph = CompressedGraph::from_csr(&inst.graph).to_csr();
    }
    let r = cover(&inst, &SetCoverParams { eps }, ctx)?;
    if !verify_cover(&inst, &r.cover) {
        return Err(Error::input("internal error: produced cover is invalid"));
    }
    let mut out = format!(
        "cover: {}/{sets} sets over {elements} elements, rounds={}, valid=yes\n",
        r.cover.len(),
        r.rounds
    );
    if ctx.emit_stats() {
        let _ = writeln!(out, "{}", ctx.snapshot().to_json("setcover"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use julienne::prelude::{CancelToken, Engine};
    use julienne_graph::generators::{erdos_renyi, rmat, RmatParams};
    use julienne_graph::transform::assign_weights;

    fn sym_store(backend: Backend) -> GraphStore {
        GraphStore::from_graph(rmat(9, 8, RmatParams::default(), 3, true), backend)
    }

    fn weighted_store(backend: Backend) -> GraphStore {
        let g = assign_weights(&erdos_renyi(400, 3200, 7, true), 1, 1000, 11);
        GraphStore::from_weighted(g, backend)
    }

    #[test]
    fn every_id_is_registered_and_described() {
        let reg = Registry::standard();
        let ids: Vec<&str> = reg.ids().collect();
        assert_eq!(
            ids,
            vec![
                "clustering",
                "components",
                "densest",
                "kcore",
                "pagerank",
                "setcover",
                "sssp",
                "triangles",
                "truss"
            ]
        );
        for id in ids {
            assert!(!reg.get(id).unwrap().summary.is_empty());
        }
    }

    #[test]
    fn unknown_algorithm_is_a_usage_error() {
        let err = Registry::standard()
            .run(
                "frobnicate",
                &GraphStore::Empty {
                    backend: Backend::Csr,
                },
                &ParamMap::default(),
                &QueryCtx::default(),
            )
            .unwrap_err();
        assert!(err.is_usage(), "{err:?}");
        assert!(err.to_string().contains("unknown algorithm"));
    }

    #[test]
    fn unknown_param_names_the_algorithm() {
        let p = ParamMap::from_pairs([("tpyo", "1")]);
        let err = Registry::standard()
            .run("kcore", &sym_store(Backend::Csr), &p, &QueryCtx::default())
            .unwrap_err();
        assert!(err.is_usage(), "{err:?}");
        assert!(err.to_string().contains("kcore"), "{err}");
        assert!(err.to_string().contains("tpyo"), "{err}");
    }

    #[test]
    fn outputs_identical_across_backends() {
        let reg = Registry::standard();
        let ctx = QueryCtx::default();
        for (id, p) in [
            ("kcore", ParamMap::default()),
            ("components", ParamMap::default()),
            ("triangles", ParamMap::default()),
            ("pagerank", ParamMap::default()),
        ] {
            let csr = reg.run(id, &sym_store(Backend::Csr), &p, &ctx).unwrap();
            let comp = reg
                .run(id, &sym_store(Backend::Compressed), &p, &ctx)
                .unwrap();
            assert_eq!(csr, comp, "{id}");
        }
        let p = ParamMap::from_pairs([("algo", "delta")]);
        let csr = reg
            .run("sssp", &weighted_store(Backend::Csr), &p, &ctx)
            .unwrap();
        let comp = reg
            .run("sssp", &weighted_store(Backend::Compressed), &p, &ctx)
            .unwrap();
        assert_eq!(csr, comp);
    }

    #[test]
    fn sssp_on_unweighted_store_is_an_input_error() {
        let err = Registry::standard()
            .run(
                "sssp",
                &sym_store(Backend::Csr),
                &ParamMap::default(),
                &QueryCtx::default(),
            )
            .unwrap_err();
        assert!(!err.is_usage());
        assert!(err.to_string().contains("weighted"), "{err}");
    }

    #[test]
    fn cancelled_query_never_starts() {
        let token = CancelToken::new();
        token.cancel();
        let ctx = QueryCtx::from_engine(&Engine::default()).with_cancel_token(token);
        let err = Registry::standard()
            .run(
                "kcore",
                &sym_store(Backend::Csr),
                &ParamMap::default(),
                &ctx,
            )
            .unwrap_err();
        assert!(matches!(err, Error::Cancelled));
    }

    #[test]
    fn every_spec_declares_scheduler_metadata() {
        let reg = Registry::standard();
        let sssp = reg.get("sssp").unwrap();
        assert_eq!(sssp.batch, BatchKind::MultiSourceSssp);
        assert_eq!(sssp.cost, CostClass::Moderate);
        let pr = reg.get("pagerank").unwrap();
        assert_eq!(pr.batch, BatchKind::WholeGraph);
        assert!(pr.float_params.contains(&"damping"));
        assert!(reg.get("setcover").unwrap().float_params.contains(&"eps"));
        for id in reg.ids() {
            let spec = reg.get(id).unwrap();
            assert!(!spec.cost.as_str().is_empty(), "{id}");
        }
    }

    #[test]
    fn canonical_params_normalize_floats() {
        let reg = Registry::standard();
        let a = ParamMap::from_pairs([("damping", "0.850"), ("iters", "10")]);
        let b = ParamMap::from_pairs([("iters", "10"), ("damping", "0.85")]);
        let spec = reg.get("pagerank").unwrap();
        let ka = spec.canonical_params(&a).unwrap();
        let kb = spec.canonical_params(&b).unwrap();
        assert_eq!(ka, kb);
        assert_eq!(ka, "damping=0.85 iters=10");
        // Non-float params pass through verbatim even if they parse as f64.
        let k = reg
            .get("sssp")
            .unwrap()
            .canonical_params(&ParamMap::from_pairs([("src", "007")]))
            .unwrap();
        assert_eq!(k, "src=007");
    }

    #[test]
    fn nan_float_param_is_rejected_at_admission() {
        let p = ParamMap::from_pairs([("damping", "NaN")]);
        let err = Registry::standard()
            .get("pagerank")
            .unwrap()
            .canonical_params(&p)
            .unwrap_err();
        assert!(matches!(err, Error::Input(_)), "{err:?}");
        assert!(err.to_string().contains("NaN"), "{err}");
    }

    #[test]
    fn sssp_batch_reports_are_byte_identical_to_solo() {
        let reg = Registry::standard();
        let ctx = QueryCtx::default();
        for backend in [Backend::Csr, Backend::Compressed] {
            let store = weighted_store(backend);
            let params: Vec<ParamMap> = vec![
                ParamMap::from_pairs([("algo", "wbfs"), ("src", "0")]),
                ParamMap::from_pairs([("algo", "wbfs"), ("src", "4000")]), // out of range
                ParamMap::from_pairs([("algo", "wbfs"), ("src", "7")]),
                ParamMap::from_pairs([("algo", "wbfs"), ("src", "399")]),
            ];
            let members: Vec<(&ParamMap, &QueryCtx)> = params.iter().map(|p| (p, &ctx)).collect();
            let batched = run_sssp_batch(&store, &members).unwrap();
            assert_eq!(batched.len(), params.len());
            for (p, got) in params.iter().zip(&batched) {
                let solo = reg.run("sssp", &store, p, &ctx);
                match (got, solo) {
                    (Ok(b), Ok(s)) => assert_eq!(*b, s),
                    (Err(b), Err(s)) => assert_eq!(b.to_string(), s.to_string()),
                    (b, s) => panic!("batched {b:?} vs solo {s:?}"),
                }
            }
        }
    }

    #[test]
    fn sssp_batch_refuses_to_fuse_mixed_deltas() {
        let store = weighted_store(Backend::Csr);
        let ctx = QueryCtx::default();
        let a = ParamMap::from_pairs([("algo", "delta"), ("delta", "64")]);
        let b = ParamMap::from_pairs([("algo", "delta"), ("delta", "128")]);
        let err = run_sssp_batch(&store, &[(&a, &ctx), (&b, &ctx)]).unwrap_err();
        assert!(err.is_usage(), "{err:?}");
        let c = ParamMap::from_pairs([("algo", "bellman")]);
        let err = run_sssp_batch(&store, &[(&c, &ctx)]).unwrap_err();
        assert!(err.is_usage(), "{err:?}");
    }

    #[test]
    fn setcover_runs_without_a_graph() {
        let p = ParamMap::from_pairs([("sets", "32"), ("elements", "1000"), ("seed", "3")]);
        let out = Registry::standard()
            .run(
                "setcover",
                &GraphStore::Empty {
                    backend: Backend::Csr,
                },
                &p,
                &QueryCtx::default(),
            )
            .unwrap();
        assert!(out.contains("valid=yes"), "{out}");
    }
}
