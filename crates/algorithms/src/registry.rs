//! The workspace algorithm registry: one table mapping algorithm ids to
//! typed entry points, shared by the CLI and the query server.
//!
//! Each [`AlgorithmSpec`] adapts string parameters (from a command line or
//! a wire request) into the module's typed params struct, runs the
//! algorithm against whichever [`GraphStore`] backend is loaded, and
//! renders the same human-readable report the CLI has always printed —
//! byte-for-byte, so a served query and a direct invocation are
//! interchangeable. Every run receives a [`QueryCtx`]; bucketed algorithms
//! poll it at round boundaries, the rest check it before starting.
//!
//! ```
//! use julienne_algorithms::registry::{GraphStore, ParamMap, Registry};
//! use julienne::prelude::{Backend, QueryCtx};
//! use std::sync::Arc;
//!
//! let g = julienne_graph::builder::from_pairs_symmetric(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
//! let store = GraphStore::Csr(Arc::new(g));
//! let out = Registry::standard()
//!     .run("kcore", &store, &ParamMap::default(), &QueryCtx::default())
//!     .unwrap();
//! assert!(out.starts_with("k_max=2"));
//! ```

use crate::bellman_ford::bellman_ford;
use crate::clustering::{local_clustering, transitivity};
use crate::components::{connected_components, num_components};
use crate::degeneracy::densest_subgraph;
use crate::dijkstra::dijkstra;
use crate::kcore::{coreness, KcoreParams};
use crate::ktruss::ktruss_julienne;
use crate::pagerank::pagerank;
use crate::setcover::{cover, verify_cover, SetCoverParams};
use crate::triangles::triangle_count;
use crate::{delta_stepping, delta_stepping::SsspParams};
use julienne::prelude::{Backend, QueryCtx};
use julienne::Error;
use julienne_graph::compress::{CompressedGraph, CompressedWGraph};
use julienne_graph::container::{self, MappedGraph};
use julienne_graph::io::{Format, GraphIo, IoOptions};
use julienne_graph::{Graph, WGraph};
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::path::Path;
use std::sync::{Arc, OnceLock};

/// The loaded input a query runs against: a CSR, byte-compressed, or
/// memory-mapped graph, weighted or not, behind an [`Arc`] so many
/// concurrent queries can share one immutable copy. [`GraphStore::Empty`]
/// serves algorithms that build their own input (set cover generates its
/// instance from parameters); it still records the requested backend so the
/// instance can be routed through the compressed representation.
#[derive(Clone)]
pub enum GraphStore {
    /// Unweighted CSR.
    Csr(Arc<Graph>),
    /// Weighted (`u32`) CSR.
    WCsr(Arc<WGraph>),
    /// Unweighted byte-compressed graph.
    Compressed(Arc<CompressedGraph>),
    /// Weighted byte-compressed graph.
    WCompressed(Arc<CompressedWGraph>),
    /// Unweighted graph served zero-copy from a mapped `.jgr` file.
    Mapped(Arc<MappedGraph<()>>),
    /// Weighted graph served zero-copy from a mapped `.jgr` file.
    WMapped(Arc<MappedGraph<u32>>),
    /// No graph loaded; `backend` still routes generated instances.
    Empty {
        /// Requested representation for generated inputs.
        backend: Backend,
    },
}

impl GraphStore {
    /// Builds a store from an unweighted CSR, compressing if requested.
    ///
    /// [`Backend::Mapped`] falls back to CSR here: an in-memory graph
    /// (generated, or parsed from text) has no backing file to map. File
    /// loads route through [`GraphStore::open`], which does map.
    pub fn from_graph(g: Graph, backend: Backend) -> GraphStore {
        match backend {
            Backend::Csr | Backend::Mapped => GraphStore::Csr(Arc::new(g)),
            Backend::Compressed => GraphStore::Compressed(Arc::new(CompressedGraph::from_csr(&g))),
        }
    }

    /// Builds a store from a weighted CSR, compressing if requested.
    /// [`Backend::Mapped`] falls back to CSR, as in
    /// [`GraphStore::from_graph`].
    pub fn from_weighted(g: WGraph, backend: Backend) -> GraphStore {
        match backend {
            Backend::Csr | Backend::Mapped => GraphStore::WCsr(Arc::new(g)),
            Backend::Compressed => {
                GraphStore::WCompressed(Arc::new(CompressedWGraph::from_csr(&g)))
            }
        }
    }

    /// Loads a graph file into the representation `backend` asks for — the
    /// one load path the CLI and server share.
    ///
    /// * [`Backend::Csr`]: any supported format via [`GraphIo`].
    /// * [`Backend::Compressed`]: a `.jgr` container with an embedded
    ///   compressed payload loads the pre-encoded blocks verbatim; anything
    ///   else is read as CSR and byte-compressed in memory.
    /// * [`Backend::Mapped`]: the file **must** be a `.jgr` container —
    ///   mapping is meaningless for formats that need parsing — and is
    ///   served zero-copy with no per-edge work before the first query.
    pub fn open(path: &Path, weighted: bool, backend: Backend) -> Result<GraphStore, Error> {
        let fmt = Format::detect(path)?;
        match backend {
            Backend::Mapped => {
                if fmt != Format::Container {
                    return Err(Error::usage(format!(
                        "backend=mapped requires a .jgr container, but {} is {fmt}; \
                         run `julienne convert` first",
                        path.display()
                    )));
                }
                if weighted {
                    Ok(GraphStore::WMapped(Arc::new(MappedGraph::open(path)?)))
                } else {
                    Ok(GraphStore::Mapped(Arc::new(MappedGraph::open(path)?)))
                }
            }
            Backend::Compressed => {
                if fmt == Format::Container && container::peek(path)?.has_compressed {
                    return Ok(if weighted {
                        GraphStore::WCompressed(Arc::new(container::read_compressed_weighted(
                            path,
                        )?))
                    } else {
                        GraphStore::Compressed(Arc::new(container::read_compressed(path)?))
                    });
                }
                let opts = IoOptions {
                    format: Some(fmt),
                    ..Default::default()
                };
                Ok(if weighted {
                    GraphStore::WCompressed(Arc::new(CompressedWGraph::from_csr(&GraphIo::read(
                        path, &opts,
                    )?)))
                } else {
                    GraphStore::Compressed(Arc::new(CompressedGraph::from_csr(&GraphIo::read(
                        path, &opts,
                    )?)))
                })
            }
            Backend::Csr => {
                let opts = IoOptions {
                    format: Some(fmt),
                    ..Default::default()
                };
                Ok(if weighted {
                    GraphStore::WCsr(Arc::new(GraphIo::read(path, &opts)?))
                } else {
                    GraphStore::Csr(Arc::new(GraphIo::read(path, &opts)?))
                })
            }
        }
    }

    /// Which in-memory representation this store holds.
    pub fn backend(&self) -> Backend {
        match self {
            GraphStore::Csr(_) | GraphStore::WCsr(_) => Backend::Csr,
            GraphStore::Compressed(_) | GraphStore::WCompressed(_) => Backend::Compressed,
            GraphStore::Mapped(_) | GraphStore::WMapped(_) => Backend::Mapped,
            GraphStore::Empty { backend } => *backend,
        }
    }

    /// Whether the store carries edge weights.
    pub fn is_weighted(&self) -> bool {
        matches!(
            self,
            GraphStore::WCsr(_) | GraphStore::WCompressed(_) | GraphStore::WMapped(_)
        )
    }

    /// Vertex count (0 when empty).
    pub fn num_vertices(&self) -> usize {
        match self {
            GraphStore::Csr(g) => g.num_vertices(),
            GraphStore::WCsr(g) => g.num_vertices(),
            GraphStore::Compressed(g) => g.num_vertices(),
            GraphStore::WCompressed(g) => g.num_vertices(),
            GraphStore::Mapped(g) => g.num_vertices(),
            GraphStore::WMapped(g) => g.num_vertices(),
            GraphStore::Empty { .. } => 0,
        }
    }

    /// Directed edge count (0 when empty).
    pub fn num_edges(&self) -> usize {
        match self {
            GraphStore::Csr(g) => g.num_edges(),
            GraphStore::WCsr(g) => g.num_edges(),
            GraphStore::Compressed(g) => g.num_edges(),
            GraphStore::WCompressed(g) => g.num_edges(),
            GraphStore::Mapped(g) => g.num_edges(),
            GraphStore::WMapped(g) => g.num_edges(),
            GraphStore::Empty { .. } => 0,
        }
    }

    /// Whether the stored graph is symmetric (false when empty).
    pub fn is_symmetric(&self) -> bool {
        match self {
            GraphStore::Csr(g) => g.is_symmetric(),
            GraphStore::WCsr(g) => g.is_symmetric(),
            GraphStore::Compressed(g) => g.is_symmetric(),
            GraphStore::WCompressed(g) => g.is_symmetric(),
            GraphStore::Mapped(g) => g.is_symmetric(),
            GraphStore::WMapped(g) => g.is_symmetric(),
            GraphStore::Empty { .. } => false,
        }
    }

    fn require_nonempty(&self) -> Result<(), Error> {
        if self.num_vertices() == 0 {
            Err(Error::input(
                "graph is empty (0 vertices); nothing to compute",
            ))
        } else {
            Ok(())
        }
    }

    fn require_symmetric(&self, msg: &str) -> Result<(), Error> {
        if self.is_symmetric() {
            Ok(())
        } else {
            Err(Error::input(msg))
        }
    }
}

impl std::fmt::Debug for GraphStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "GraphStore({:?}, weighted={}, n={}, m={})",
            self.backend(),
            self.is_weighted(),
            self.num_vertices(),
            self.num_edges()
        )
    }
}

/// Binds `$g` to whatever graph `$store` holds and evaluates `$body` —
/// the algorithms are generic over the graph traits, so one body serves
/// all six representations.
macro_rules! any_graph {
    ($store:expr, $id:expr, |$g:ident| $body:expr) => {
        match $store {
            GraphStore::Csr(g) => {
                let $g = g.as_ref();
                $body
            }
            GraphStore::WCsr(g) => {
                let $g = g.as_ref();
                $body
            }
            GraphStore::Compressed(g) => {
                let $g = g.as_ref();
                $body
            }
            GraphStore::WCompressed(g) => {
                let $g = g.as_ref();
                $body
            }
            GraphStore::Mapped(g) => {
                let $g = g.as_ref();
                $body
            }
            GraphStore::WMapped(g) => {
                let $g = g.as_ref();
                $body
            }
            GraphStore::Empty { .. } => {
                return Err(Error::input(format!("{} requires a graph input", $id)))
            }
        }
    };
}

/// Like [`any_graph!`], restricted to the weighted representations.
macro_rules! weighted_graph {
    ($store:expr, $id:expr, |$g:ident| $body:expr) => {
        match $store {
            GraphStore::WCsr(g) => {
                let $g = g.as_ref();
                $body
            }
            GraphStore::WCompressed(g) => {
                let $g = g.as_ref();
                $body
            }
            GraphStore::WMapped(g) => {
                let $g = g.as_ref();
                $body
            }
            _ => {
                return Err(Error::input(format!(
                    "{} requires a weighted graph input",
                    $id
                )))
            }
        }
    };
}

/// String-keyed parameters with typed getters and unknown-key rejection —
/// the bridge from a command line or wire request to each module's typed
/// params struct. Getters record which keys were read; [`ParamMap::finish`]
/// rejects the rest, so a typo is a usage error rather than a silently
/// ignored option.
#[derive(Debug, Default)]
pub struct ParamMap {
    map: BTreeMap<String, String>,
    used: RefCell<BTreeSet<String>>,
}

impl ParamMap {
    /// Builds a map from `(key, value)` pairs; later duplicates win.
    pub fn from_pairs<I, K, V>(pairs: I) -> ParamMap
    where
        I: IntoIterator<Item = (K, V)>,
        K: Into<String>,
        V: Into<String>,
    {
        ParamMap {
            map: pairs
                .into_iter()
                .map(|(k, v)| (k.into(), v.into()))
                .collect(),
            used: RefCell::new(BTreeSet::new()),
        }
    }

    /// Inserts or replaces one parameter.
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.map.insert(key.into(), value.into());
    }

    fn raw(&self, key: &str) -> Option<&str> {
        let v = self.map.get(key).map(String::as_str);
        if v.is_some() {
            self.used.borrow_mut().insert(key.to_string());
        }
        v
    }

    /// An optional string parameter with default.
    pub fn string_or(&self, key: &str, default: &str) -> String {
        self.raw(key).unwrap_or(default).to_string()
    }

    /// An optional typed parameter with default; a value that fails to
    /// parse is a usage error naming the offending key and value.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, Error> {
        match self.raw(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| Error::usage(format!("option {key}={v:?} has the wrong type"))),
        }
    }

    /// Rejects any parameters no getter touched.
    pub fn finish(&self, id: &str) -> Result<(), Error> {
        let used = self.used.borrow();
        let unknown: Vec<&str> = self
            .map
            .keys()
            .map(String::as_str)
            .filter(|k| !used.contains(*k))
            .collect();
        if unknown.is_empty() {
            Ok(())
        } else {
            Err(Error::usage(format!(
                "unknown options for {id}: {}",
                unknown.join(", ")
            )))
        }
    }
}

/// What input representation an algorithm consumes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GraphNeeds {
    /// Any loaded graph (weights, if present, are ignored).
    Unweighted,
    /// A weighted graph.
    Weighted,
    /// No graph — the algorithm generates its own input from parameters.
    None,
}

type RunFn = fn(&GraphStore, &ParamMap, &QueryCtx) -> Result<String, Error>;

/// One registered algorithm: id, input contract, and the adapter that runs
/// it from string parameters.
pub struct AlgorithmSpec {
    /// Registry id (the CLI subcommand and the wire `algo` field).
    pub id: &'static str,
    /// Input contract.
    pub needs: GraphNeeds,
    /// One-line description.
    pub summary: &'static str,
    run: RunFn,
}

impl AlgorithmSpec {
    /// Runs the algorithm. Parameters are validated first (usage errors),
    /// then input-shape checks (input errors), then the algorithm itself,
    /// which polls `ctx` at round boundaries.
    pub fn run(
        &self,
        store: &GraphStore,
        params: &ParamMap,
        ctx: &QueryCtx,
    ) -> Result<String, Error> {
        (self.run)(store, params, ctx)
    }
}

/// The algorithm table. [`Registry::standard`] is the process-wide
/// instance both the CLI and the server dispatch through.
pub struct Registry {
    by_id: BTreeMap<&'static str, AlgorithmSpec>,
}

impl Registry {
    /// The standard table of the nine query algorithms.
    pub fn standard() -> &'static Registry {
        static STANDARD: OnceLock<Registry> = OnceLock::new();
        STANDARD.get_or_init(|| {
            let specs = [
                AlgorithmSpec {
                    id: "kcore",
                    needs: GraphNeeds::Unweighted,
                    summary: "coreness of every vertex via work-efficient peeling",
                    run: run_kcore,
                },
                AlgorithmSpec {
                    id: "sssp",
                    needs: GraphNeeds::Weighted,
                    summary: "single-source shortest paths (delta|wbfs|bellman|dijkstra)",
                    run: run_sssp,
                },
                AlgorithmSpec {
                    id: "components",
                    needs: GraphNeeds::Unweighted,
                    summary: "connected components by label propagation",
                    run: run_components,
                },
                AlgorithmSpec {
                    id: "densest",
                    needs: GraphNeeds::Unweighted,
                    summary: "Charikar 2-approximate densest subgraph via peeling",
                    run: run_densest,
                },
                AlgorithmSpec {
                    id: "triangles",
                    needs: GraphNeeds::Unweighted,
                    summary: "exact triangle count",
                    run: run_triangles,
                },
                AlgorithmSpec {
                    id: "truss",
                    needs: GraphNeeds::Unweighted,
                    summary: "k-truss decomposition via edge peeling",
                    run: run_truss,
                },
                AlgorithmSpec {
                    id: "clustering",
                    needs: GraphNeeds::Unweighted,
                    summary: "transitivity and average local clustering",
                    run: run_clustering,
                },
                AlgorithmSpec {
                    id: "pagerank",
                    needs: GraphNeeds::Unweighted,
                    summary: "PageRank by power iteration",
                    run: run_pagerank,
                },
                AlgorithmSpec {
                    id: "setcover",
                    needs: GraphNeeds::None,
                    summary: "bucketed MaNIS set cover on a generated instance",
                    run: run_setcover,
                },
            ];
            Registry {
                by_id: specs.into_iter().map(|s| (s.id, s)).collect(),
            }
        })
    }

    /// Looks up a spec by id.
    pub fn get(&self, id: &str) -> Option<&AlgorithmSpec> {
        self.by_id.get(id)
    }

    /// All registered ids, sorted.
    pub fn ids(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.by_id.keys().copied()
    }

    /// Dispatches `id` through the table. The context is checked before
    /// any work: a query cancelled while queued never starts.
    pub fn run(
        &self,
        id: &str,
        store: &GraphStore,
        params: &ParamMap,
        ctx: &QueryCtx,
    ) -> Result<String, Error> {
        let spec = self
            .get(id)
            .ok_or_else(|| Error::usage(format!("unknown algorithm {id:?}")))?;
        ctx.check()?;
        spec.run(store, params, ctx)
    }
}

fn run_kcore(store: &GraphStore, p: &ParamMap, ctx: &QueryCtx) -> Result<String, Error> {
    let top: usize = p.get_or("top", 10)?;
    p.finish("kcore")?;
    store.require_nonempty()?;
    store.require_symmetric("k-core requires a symmetric graph (use convert symmetrize=true)")?;
    let r = any_graph!(store, "kcore", |g| coreness(
        g,
        &KcoreParams::default(),
        ctx
    ))?;
    let k_max = r.coreness.iter().copied().max().unwrap_or(0);
    let mut by_core: Vec<(u32, u32)> = r
        .coreness
        .iter()
        .enumerate()
        .map(|(v, &c)| (c, v as u32))
        .collect();
    by_core.sort_unstable_by(|a, b| b.cmp(a));
    let mut out = format!(
        "k_max={k_max} rounds={} moves={}\n",
        r.rounds, r.identifiers_moved
    );
    let _ = writeln!(out, "top vertices by coreness:");
    for (c, v) in by_core.into_iter().take(top) {
        let _ = writeln!(out, "  v{v}: coreness {c}");
    }
    if ctx.emit_stats() {
        let _ = writeln!(out, "{}", ctx.snapshot().to_json("kcore"));
    }
    Ok(out)
}

fn run_sssp(store: &GraphStore, p: &ParamMap, ctx: &QueryCtx) -> Result<String, Error> {
    let src: u32 = p.get_or("src", 0)?;
    let delta: u64 = p.get_or("delta", 32768)?;
    if delta == 0 {
        return Err(Error::usage(
            "delta=0 is invalid; the bucket width must be >= 1",
        ));
    }
    let algo = p.string_or("algo", "delta");
    p.finish("sssp")?;
    store.require_nonempty()?;
    if src as usize >= store.num_vertices() {
        return Err(Error::input(format!(
            "src {src} out of range (n = {})",
            store.num_vertices()
        )));
    }
    let (dist, rounds) = weighted_graph!(store, "sssp", |g| match algo.as_str() {
        "delta" => {
            let r = delta_stepping::sssp(g, &SsspParams { src, delta }, ctx)?;
            (r.dist, r.rounds)
        }
        "wbfs" => {
            let r = delta_stepping::sssp(g, &SsspParams { src, delta: 1 }, ctx)?;
            (r.dist, r.rounds)
        }
        "bellman" => {
            ctx.check()?;
            let r = bellman_ford(g, src);
            (r.dist, r.rounds)
        }
        "dijkstra" => {
            ctx.check()?;
            (dijkstra(g, src), 0)
        }
        other => return Err(Error::usage(format!("unknown algo {other:?}"))),
    });
    let reached = dist.iter().filter(|&&d| d != u64::MAX).count();
    let max = dist
        .iter()
        .filter(|&&d| d != u64::MAX)
        .max()
        .copied()
        .unwrap_or(0);
    let mut out = format!(
        "algo={algo} src={src} reached={reached}/{} max_dist={max} rounds={rounds}\n",
        store.num_vertices()
    );
    if ctx.emit_stats() {
        let _ = writeln!(out, "{}", ctx.snapshot().to_json(&format!("sssp_{algo}")));
    }
    Ok(out)
}

fn run_components(store: &GraphStore, p: &ParamMap, ctx: &QueryCtx) -> Result<String, Error> {
    p.finish("components")?;
    store.require_nonempty()?;
    store.require_symmetric("components requires a symmetric graph")?;
    ctx.check()?;
    let r = any_graph!(store, "components", |g| connected_components(g));
    Ok(format!(
        "components={} rounds={}\n",
        num_components(&r.label),
        r.rounds
    ))
}

fn run_densest(store: &GraphStore, p: &ParamMap, ctx: &QueryCtx) -> Result<String, Error> {
    p.finish("densest")?;
    store.require_nonempty()?;
    store.require_symmetric("densest requires a symmetric graph")?;
    ctx.check()?;
    let ds = any_graph!(store, "densest", |g| densest_subgraph(g));
    Ok(format!(
        "densest subgraph: {} vertices, density {:.3}\n",
        ds.vertices.len(),
        ds.density
    ))
}

fn run_triangles(store: &GraphStore, p: &ParamMap, ctx: &QueryCtx) -> Result<String, Error> {
    p.finish("triangles")?;
    store.require_nonempty()?;
    store.require_symmetric("triangle counting requires a symmetric graph")?;
    ctx.check()?;
    let t = any_graph!(store, "triangles", |g| triangle_count(g));
    Ok(format!("triangles={t}\n"))
}

fn run_truss(store: &GraphStore, p: &ParamMap, ctx: &QueryCtx) -> Result<String, Error> {
    let top: usize = p.get_or("top", 5)?;
    p.finish("truss")?;
    store.require_nonempty()?;
    store.require_symmetric("k-truss requires a symmetric graph")?;
    ctx.check()?;
    let r = any_graph!(store, "truss", |g| ktruss_julienne(g));
    let mut out = format!(
        "edges={} max_truss={} rounds={}\n",
        r.trussness.len(),
        r.max_truss,
        r.rounds
    );
    let mut by_truss: Vec<(u32, usize)> = r
        .trussness
        .iter()
        .copied()
        .map(|t| (t, 1))
        .fold(BTreeMap::new(), |mut m: BTreeMap<u32, usize>, (t, c)| {
            *m.entry(t).or_default() += c;
            m
        })
        .into_iter()
        .collect();
    by_truss.reverse();
    let _ = writeln!(out, "edges per trussness (top {top} levels):");
    for (t, c) in by_truss.into_iter().take(top) {
        let _ = writeln!(out, "  trussness {t}: {c} edges");
    }
    Ok(out)
}

fn run_clustering(store: &GraphStore, p: &ParamMap, ctx: &QueryCtx) -> Result<String, Error> {
    p.finish("clustering")?;
    store.require_nonempty()?;
    store.require_symmetric("clustering requires a symmetric graph")?;
    ctx.check()?;
    let (local, trans) = any_graph!(store, "clustering", |g| (
        local_clustering(g),
        transitivity(g)
    ));
    let avg = local.iter().sum::<f64>() / local.len().max(1) as f64;
    Ok(format!(
        "transitivity={trans:.6} avg_local_clustering={avg:.6}\n"
    ))
}

fn run_pagerank(store: &GraphStore, p: &ParamMap, ctx: &QueryCtx) -> Result<String, Error> {
    let damping: f64 = p.get_or("damping", 0.85)?;
    if !(0.0..=1.0).contains(&damping) {
        return Err(Error::usage(format!(
            "damping={damping} out of range (expected 0 <= damping <= 1)"
        )));
    }
    let iters: u32 = p.get_or("iters", 100)?;
    p.finish("pagerank")?;
    store.require_nonempty()?;
    ctx.check()?;
    let r = any_graph!(store, "pagerank", |g| pagerank(g, damping, 1e-9, iters));
    let mut top: Vec<(usize, f64)> = r.rank.iter().copied().enumerate().collect();
    top.sort_by(|a, b| b.1.total_cmp(&a.1));
    let mut out = format!("iterations={}\n", r.iterations);
    let _ = writeln!(out, "top vertices by rank:");
    for (v, score) in top.into_iter().take(5) {
        let _ = writeln!(out, "  v{v}: {score:.6}");
    }
    Ok(out)
}

fn run_setcover(store: &GraphStore, p: &ParamMap, ctx: &QueryCtx) -> Result<String, Error> {
    let sets: usize = p.get_or("sets", 256)?;
    let elements: usize = p.get_or("elements", 16_384)?;
    let mult: usize = p.get_or("mult", 4)?;
    let eps: f64 = p.get_or("eps", 0.01)?;
    let seed: u64 = p.get_or("seed", 1)?;
    p.finish("setcover")?;
    let mut inst = julienne_graph::generators::set_cover_instance(sets, elements, mult, seed);
    if store.backend() == Backend::Compressed {
        // Set cover peels a packed (mutable) copy of the membership graph,
        // so the compressed backend routes the instance through a
        // compress/decompress round trip — same adjacency, proving the
        // byte-coded form carries the full structure.
        inst.graph = CompressedGraph::from_csr(&inst.graph).to_csr();
    }
    let r = cover(&inst, &SetCoverParams { eps }, ctx)?;
    if !verify_cover(&inst, &r.cover) {
        return Err(Error::input("internal error: produced cover is invalid"));
    }
    let mut out = format!(
        "cover: {}/{sets} sets over {elements} elements, rounds={}, valid=yes\n",
        r.cover.len(),
        r.rounds
    );
    if ctx.emit_stats() {
        let _ = writeln!(out, "{}", ctx.snapshot().to_json("setcover"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use julienne::prelude::{CancelToken, Engine};
    use julienne_graph::generators::{erdos_renyi, rmat, RmatParams};
    use julienne_graph::transform::assign_weights;

    fn sym_store(backend: Backend) -> GraphStore {
        GraphStore::from_graph(rmat(9, 8, RmatParams::default(), 3, true), backend)
    }

    fn weighted_store(backend: Backend) -> GraphStore {
        let g = assign_weights(&erdos_renyi(400, 3200, 7, true), 1, 1000, 11);
        GraphStore::from_weighted(g, backend)
    }

    #[test]
    fn every_id_is_registered_and_described() {
        let reg = Registry::standard();
        let ids: Vec<&str> = reg.ids().collect();
        assert_eq!(
            ids,
            vec![
                "clustering",
                "components",
                "densest",
                "kcore",
                "pagerank",
                "setcover",
                "sssp",
                "triangles",
                "truss"
            ]
        );
        for id in ids {
            assert!(!reg.get(id).unwrap().summary.is_empty());
        }
    }

    #[test]
    fn unknown_algorithm_is_a_usage_error() {
        let err = Registry::standard()
            .run(
                "frobnicate",
                &GraphStore::Empty {
                    backend: Backend::Csr,
                },
                &ParamMap::default(),
                &QueryCtx::default(),
            )
            .unwrap_err();
        assert!(err.is_usage(), "{err:?}");
        assert!(err.to_string().contains("unknown algorithm"));
    }

    #[test]
    fn unknown_param_names_the_algorithm() {
        let p = ParamMap::from_pairs([("tpyo", "1")]);
        let err = Registry::standard()
            .run("kcore", &sym_store(Backend::Csr), &p, &QueryCtx::default())
            .unwrap_err();
        assert!(err.is_usage(), "{err:?}");
        assert!(err.to_string().contains("kcore"), "{err}");
        assert!(err.to_string().contains("tpyo"), "{err}");
    }

    #[test]
    fn outputs_identical_across_backends() {
        let reg = Registry::standard();
        let ctx = QueryCtx::default();
        for (id, p) in [
            ("kcore", ParamMap::default()),
            ("components", ParamMap::default()),
            ("triangles", ParamMap::default()),
            ("pagerank", ParamMap::default()),
        ] {
            let csr = reg.run(id, &sym_store(Backend::Csr), &p, &ctx).unwrap();
            let comp = reg
                .run(id, &sym_store(Backend::Compressed), &p, &ctx)
                .unwrap();
            assert_eq!(csr, comp, "{id}");
        }
        let p = ParamMap::from_pairs([("algo", "delta")]);
        let csr = reg
            .run("sssp", &weighted_store(Backend::Csr), &p, &ctx)
            .unwrap();
        let comp = reg
            .run("sssp", &weighted_store(Backend::Compressed), &p, &ctx)
            .unwrap();
        assert_eq!(csr, comp);
    }

    #[test]
    fn sssp_on_unweighted_store_is_an_input_error() {
        let err = Registry::standard()
            .run(
                "sssp",
                &sym_store(Backend::Csr),
                &ParamMap::default(),
                &QueryCtx::default(),
            )
            .unwrap_err();
        assert!(!err.is_usage());
        assert!(err.to_string().contains("weighted"), "{err}");
    }

    #[test]
    fn cancelled_query_never_starts() {
        let token = CancelToken::new();
        token.cancel();
        let ctx = QueryCtx::from_engine(&Engine::default()).with_cancel_token(token);
        let err = Registry::standard()
            .run(
                "kcore",
                &sym_store(Backend::Csr),
                &ParamMap::default(),
                &ctx,
            )
            .unwrap_err();
        assert!(matches!(err, Error::Cancelled));
    }

    #[test]
    fn setcover_runs_without_a_graph() {
        let p = ParamMap::from_pairs([("sets", "32"), ("elements", "1000"), ("seed", "3")]);
        let out = Registry::standard()
            .run(
                "setcover",
                &GraphStore::Empty {
                    backend: Backend::Csr,
                },
                &p,
                &QueryCtx::default(),
            )
            .unwrap();
        assert!(out.contains("valid=yes"), "{out}");
    }
}
