//! Betweenness centrality (Brandes) — part of Ligra's original application
//! suite, included to exercise the frontier engine's forward/backward
//! phases on top of the same primitives Julienne extends.
//!
//! Forward: BFS levels accumulating shortest-path counts σ. Backward: walk
//! the levels in reverse accumulating dependencies
//! δ(v) = Σ_{w : v→w on a shortest path} σ(v)/σ(w) · (1 + δ(w)).
//! This implementation computes single-source BC contributions from a set
//! of sample sources (exact when all vertices are sampled).

use julienne_graph::VertexId;
use julienne_ligra::traits::OutEdges;
use julienne_primitives::atomics::cas_u32;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Atomic f64 add via CAS on the bit pattern.
fn atomic_f64_add(cell: &AtomicU64, x: f64) {
    let mut cur = cell.load(Ordering::SeqCst);
    loop {
        let new = f64::from_bits(cur) + x;
        match cell.compare_exchange(cur, new.to_bits(), Ordering::SeqCst, Ordering::SeqCst) {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

/// Betweenness centrality from `sources` (exact if `sources` = all).
pub fn betweenness<G: OutEdges>(g: &G, sources: &[VertexId]) -> Vec<f64> {
    let n = g.num_vertices();
    let mut bc = vec![0.0f64; n];
    for &s in sources {
        let delta = brandes_from(g, s);
        bc.par_iter_mut()
            .zip(delta.par_iter())
            .enumerate()
            .for_each(|(v, (b, &d))| {
                if v as u32 != s {
                    *b += d;
                }
            });
    }
    bc
}

/// Single-source Brandes: forward σ accumulation + backward dependency.
pub fn brandes_from<G: OutEdges>(g: &G, src: VertexId) -> Vec<f64> {
    let n = g.num_vertices();
    let level: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(u32::MAX)).collect();
    let sigma: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
    let in_next: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    level[src as usize].store(0, Ordering::SeqCst);
    sigma[src as usize].store(1, Ordering::SeqCst);

    let mut levels: Vec<Vec<VertexId>> = vec![vec![src]];
    let mut depth = 0u32;
    loop {
        depth += 1;
        let cur = levels.last().unwrap();
        // σ accumulation: every shortest edge u→v with v on the new level.
        cur.par_iter().for_each(|&u| {
            let su = sigma[u as usize].load(Ordering::SeqCst);
            g.for_each_out(u, |v, _| {
                // Claim v for the next level if unvisited.
                let lv = level[v as usize].load(Ordering::SeqCst);
                if lv == u32::MAX && cas_u32(&level[v as usize], u32::MAX, depth) {
                    in_next[v as usize].store(1, Ordering::SeqCst);
                }
                if level[v as usize].load(Ordering::SeqCst) == depth {
                    sigma[v as usize].fetch_add(su, Ordering::SeqCst);
                }
            });
        });
        let next: Vec<VertexId> = julienne_primitives::filter::pack_index(n, |v| {
            in_next[v].swap(0, Ordering::SeqCst) == 1
        })
        .into_iter()
        .collect();
        if next.is_empty() {
            break;
        }
        levels.push(next);
    }

    // Backward phase: dependencies per level, deepest first.
    let delta: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0f64.to_bits())).collect();
    for lv in (1..levels.len()).rev() {
        levels[lv].par_iter().for_each(|&w| {
            let sw = sigma[w as usize].load(Ordering::SeqCst) as f64;
            let dw = f64::from_bits(delta[w as usize].load(Ordering::SeqCst));
            let contrib_per_sigma = (1.0 + dw) / sw;
            g.for_each_out(w, |v, _| {
                if level[v as usize].load(Ordering::SeqCst) == lv as u32 - 1 {
                    let sv = sigma[v as usize].load(Ordering::SeqCst) as f64;
                    atomic_f64_add(&delta[v as usize], sv * contrib_per_sigma);
                }
            });
        });
    }
    delta
        .into_iter()
        .map(|d| f64::from_bits(d.into_inner()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use julienne_graph::builder::from_pairs_symmetric;
    use julienne_graph::csr::Csr;
    use julienne_graph::generators::erdos_renyi;

    /// Sequential reference Brandes (textbook).
    fn brandes_seq(g: &Csr<()>, src: VertexId) -> Vec<f64> {
        let n = g.num_vertices();
        let mut dist = vec![i64::MAX; n];
        let mut sigma = vec![0u64; n];
        let mut order: Vec<VertexId> = Vec::new();
        let mut queue = std::collections::VecDeque::new();
        dist[src as usize] = 0;
        sigma[src as usize] = 1;
        queue.push_back(src);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            for &v in g.neighbors(u) {
                if dist[v as usize] == i64::MAX {
                    dist[v as usize] = dist[u as usize] + 1;
                    queue.push_back(v);
                }
                if dist[v as usize] == dist[u as usize] + 1 {
                    sigma[v as usize] += sigma[u as usize];
                }
            }
        }
        let mut delta = vec![0.0f64; n];
        for &w in order.iter().rev() {
            for &v in g.neighbors(w) {
                if dist[v as usize] + 1 == dist[w as usize] {
                    delta[v as usize] += sigma[v as usize] as f64 / sigma[w as usize] as f64
                        * (1.0 + delta[w as usize]);
                }
            }
        }
        delta
    }

    fn close(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < 1e-9, "index {i}: {x} vs {y}");
        }
    }

    #[test]
    fn path_graph_centralities() {
        // Path 0-1-2-3: from source 0, δ(1)=2 (lies on paths to 2,3),
        // δ(2)=1, δ(3)=0.
        let g = from_pairs_symmetric(4, &[(0, 1), (1, 2), (2, 3)]);
        let d = brandes_from(&g, 0);
        assert_eq!(d, vec![3.0, 2.0, 1.0, 0.0]);
    }

    #[test]
    fn matches_sequential_on_random() {
        for seed in 0..3 {
            let g = erdos_renyi(200, 1_500, seed, true);
            for src in [0u32, 7, 99] {
                close(&brandes_from(&g, src), &brandes_seq(&g, src));
            }
        }
    }

    #[test]
    fn star_center_has_max_betweenness() {
        let pairs: Vec<(u32, u32)> = (1..12).map(|i| (0, i)).collect();
        let g = from_pairs_symmetric(12, &pairs);
        let all: Vec<u32> = (0..12).collect();
        let bc = betweenness(&g, &all);
        for v in 1..12 {
            assert!(bc[0] > bc[v], "center must dominate");
        }
        // Leaves lie on no shortest path between others.
        for leaf in &bc[1..12] {
            assert!(leaf.abs() < 1e-12);
        }
    }

    #[test]
    fn sampled_subset_is_partial_sum() {
        let g = erdos_renyi(150, 1_000, 4, true);
        let all: Vec<u32> = (0..150).collect();
        let full = betweenness(&g, &all);
        let half = betweenness(&g, &all[..75]);
        for v in 0..150 {
            assert!(half[v] <= full[v] + 1e-9);
        }
    }
}
