//! Triangle counting and per-edge support — the substrate for k-truss
//! (the bucketing-over-edges application the paper envisions in §3.1).
//!
//! Global counting uses the standard rank orientation: direct each
//! undirected edge from lower to higher (degree, id) rank, then intersect
//! out-neighborhoods; every triangle is counted exactly once at its lowest
//! -rank vertex. O(m^{3/2}) work on arbitrary graphs.

use julienne_graph::VertexId;
use julienne_ligra::traits::{GraphRef, OutEdges};
use julienne_primitives::scan::prefix_sums;
use rayon::prelude::*;

/// Intersects two sorted ascending slices, invoking `f` on every common
/// element.
#[inline]
pub fn intersect_sorted<F: FnMut(VertexId)>(a: &[VertexId], b: &[VertexId], mut f: F) {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                f(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
}

/// Rank of a vertex for orientation: (degree, id) lexicographic.
#[inline]
fn rank_lt<G: OutEdges>(g: &G, a: VertexId, b: VertexId) -> bool {
    let (da, db) = (g.out_degree(a), g.out_degree(b));
    da < db || (da == db && a < b)
}

/// Counts the triangles of a symmetric graph exactly once each.
pub fn triangle_count<G: GraphRef>(g: &G) -> u64 {
    assert!(g.is_symmetric());
    let n = g.num_vertices();
    // Build the rank-oriented DAG adjacency (each vertex keeps only
    // higher-ranked neighbors), sorted for merge intersection.
    let oriented: Vec<Vec<VertexId>> = (0..n as VertexId)
        .into_par_iter()
        .map(|v| {
            let mut out: Vec<VertexId> = Vec::new();
            g.for_each_out(v, |u, _| {
                if rank_lt(g, v, u) {
                    out.push(u);
                }
            });
            out.sort_unstable();
            out
        })
        .collect();
    (0..n as VertexId)
        .into_par_iter()
        .map(|v| {
            let mut local = 0u64;
            for &u in &oriented[v as usize] {
                intersect_sorted(&oriented[v as usize], &oriented[u as usize], |_| {
                    local += 1;
                });
            }
            local
        })
        .sum()
}

/// The undirected edge set of a symmetric graph, as `(u, v)` with `u < v`,
/// plus a CSR-shaped index that maps each directed arc to its undirected
/// edge id — the identifier space k-truss buckets over.
pub struct EdgeIndex {
    /// Endpoints of undirected edge `e` (`endpoints[e].0 < endpoints[e].1`).
    pub endpoints: Vec<(VertexId, VertexId)>,
    /// CSR offsets over directed arcs (same shape as the graph).
    pub arc_offsets: Vec<u64>,
    /// Neighbor of each arc (sorted per vertex).
    pub arc_target: Vec<VertexId>,
    /// Undirected edge id of each arc.
    pub arc_eid: Vec<u32>,
}

impl EdgeIndex {
    /// Builds the index. Requires a symmetric graph; neighbor lists need
    /// not be pre-sorted.
    pub fn new<G: GraphRef>(g: &G) -> EdgeIndex {
        assert!(g.is_symmetric());
        let n = g.num_vertices();
        // Sorted adjacency copy.
        let sorted: Vec<Vec<VertexId>> = (0..n as VertexId)
            .into_par_iter()
            .map(|v| {
                let mut a = Vec::with_capacity(g.out_degree(v));
                g.for_each_out(v, |u, _| a.push(u));
                a.sort_unstable();
                a
            })
            .collect();
        // Assign ids to (u < v) edges in CSR order of u.
        let mut counts: Vec<usize> = sorted
            .iter()
            .enumerate()
            .map(|(v, a)| a.iter().filter(|&&u| u > v as VertexId).count())
            .collect();
        counts.push(0);
        let num_edges = prefix_sums(&mut counts);
        let mut endpoints = vec![(0, 0); num_edges];
        for (v, a) in sorted.iter().enumerate() {
            let mut k = counts[v];
            for &u in a {
                if u > v as VertexId {
                    endpoints[k] = (v as VertexId, u);
                    k += 1;
                }
            }
        }
        // Arc arrays with edge-id resolution: for arc (v, u), the edge id
        // is found by position within the lower endpoint's higher-neighbor
        // run.
        let mut arc_offsets = vec![0u64; n + 1];
        for v in 0..n {
            arc_offsets[v + 1] = arc_offsets[v] + sorted[v].len() as u64;
        }
        let mut arc_target = Vec::with_capacity(arc_offsets[n] as usize);
        let mut arc_eid = vec![0u32; arc_offsets[n] as usize];
        for a in &sorted {
            arc_target.extend_from_slice(a);
        }
        let eid_of = |a: VertexId, b: VertexId| -> u32 {
            // a < b required; edge id = counts[a] + rank of b among a's
            // higher neighbors.
            let higher_start = sorted[a as usize].partition_point(|&x| x <= a);
            let pos = sorted[a as usize][higher_start..]
                .binary_search(&b)
                .expect("edge must exist");
            (counts[a as usize] + pos) as u32
        };
        for v in 0..n as VertexId {
            let base = arc_offsets[v as usize] as usize;
            for (k, &u) in sorted[v as usize].iter().enumerate() {
                let (a, b) = (v.min(u), v.max(u));
                arc_eid[base + k] = eid_of(a, b);
            }
        }
        EdgeIndex {
            endpoints,
            arc_offsets,
            arc_target,
            arc_eid,
        }
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.endpoints.len()
    }

    /// The sorted neighbor slice of `v` with parallel edge ids.
    pub fn arcs_of(&self, v: VertexId) -> (&[VertexId], &[u32]) {
        let s = self.arc_offsets[v as usize] as usize;
        let e = self.arc_offsets[v as usize + 1] as usize;
        (&self.arc_target[s..e], &self.arc_eid[s..e])
    }

    /// Looks up the undirected edge id of `(a, b)`; `None` if absent.
    pub fn edge_id(&self, a: VertexId, b: VertexId) -> Option<u32> {
        let (nbrs, eids) = self.arcs_of(a);
        nbrs.binary_search(&b).ok().map(|i| eids[i])
    }
}

/// Per-edge triangle support: `support[e]` = number of triangles through
/// undirected edge `e`. The sum over edges equals 3 × triangle count.
/// (Everything needed lives in the index; the graph argument is retained
/// for signature symmetry with the other support primitives.)
pub fn edge_support<G: OutEdges>(_g: &G, idx: &EdgeIndex) -> Vec<u32> {
    idx.endpoints
        .par_iter()
        .map(|&(u, v)| {
            let (nu, _) = idx.arcs_of(u);
            let (nv, _) = idx.arcs_of(v);
            let mut s = 0u32;
            intersect_sorted(nu, nv, |_| s += 1);
            s
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use julienne_graph::builder::from_pairs_symmetric;
    use julienne_graph::csr::Csr;
    use julienne_graph::generators::{erdos_renyi, rmat, RmatParams};

    fn triangle_count_brute(g: &Csr<()>) -> u64 {
        let n = g.num_vertices() as u32;
        let mut count = 0u64;
        for u in 0..n {
            for &v in g.neighbors(u) {
                if v <= u {
                    continue;
                }
                for &w in g.neighbors(v) {
                    if w <= v {
                        continue;
                    }
                    if g.neighbors(u).contains(&w) {
                        count += 1;
                    }
                }
            }
        }
        count
    }

    #[test]
    fn counts_known_graphs() {
        // Triangle.
        let g = from_pairs_symmetric(3, &[(0, 1), (1, 2), (0, 2)]);
        assert_eq!(triangle_count(&g), 1);
        // K4 has 4 triangles.
        let k4 = from_pairs_symmetric(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        assert_eq!(triangle_count(&k4), 4);
        // A square has none.
        let c4 = from_pairs_symmetric(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(triangle_count(&c4), 0);
    }

    #[test]
    fn matches_brute_force_random() {
        for seed in 0..3 {
            let g = erdos_renyi(120, 1_200, seed, true);
            assert_eq!(triangle_count(&g), triangle_count_brute(&g), "seed {seed}");
        }
    }

    #[test]
    fn support_sums_to_three_times_triangles() {
        let g = rmat(9, 8, RmatParams::default(), 4, true);
        let idx = EdgeIndex::new(&g);
        let support = edge_support(&g, &idx);
        let sum: u64 = support.iter().map(|&s| s as u64).sum();
        assert_eq!(sum, 3 * triangle_count(&g));
        assert_eq!(idx.num_edges(), g.num_edges() / 2);
    }

    #[test]
    fn edge_index_lookup_consistent() {
        let g = erdos_renyi(200, 1_600, 7, true);
        let idx = EdgeIndex::new(&g);
        for (e, &(u, v)) in idx.endpoints.iter().enumerate() {
            assert!(u < v);
            assert_eq!(idx.edge_id(u, v), Some(e as u32));
            assert_eq!(idx.edge_id(v, u), Some(e as u32));
        }
        // Non-edges return None.
        let mut non_edge = None;
        'outer: for a in 0..200u32 {
            for b in (a + 1)..200 {
                if !g.neighbors(a).contains(&b) {
                    non_edge = Some((a, b));
                    break 'outer;
                }
            }
        }
        let (a, b) = non_edge.unwrap();
        assert_eq!(idx.edge_id(a, b), None);
    }

    #[test]
    fn k4_edge_support_all_two() {
        let k4 = from_pairs_symmetric(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let idx = EdgeIndex::new(&k4);
        let support = edge_support(&k4, &idx);
        assert_eq!(support, vec![2; 6]);
    }
}
