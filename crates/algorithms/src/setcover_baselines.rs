//! Set-cover baselines: the sequential greedy algorithm and the PBBS-style
//! work-inefficient parallel comparator of Table 3 / Figure 5.

use crate::setcover::SetCoverResult;
use julienne_graph::generators::SetCoverInstance;
use julienne_graph::packed::PackedGraph;
use julienne_graph::VertexId;
use julienne_primitives::atomics::write_min_u32;
use julienne_primitives::bitset::AtomicBitSet;
use julienne_primitives::filter::{filter_map, pack_index};
use rayon::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU32, Ordering};

/// Sequential greedy set cover (Johnson): repeatedly choose the set
/// covering the most uncovered elements. Hₙ-approximate; implemented with a
/// lazy max-heap (degrees only decrease, so a stale pop is re-keyed).
pub fn set_cover_greedy_seq(inst: &SetCoverInstance) -> SetCoverResult {
    let num_sets = inst.num_sets;
    let num_elements = inst.num_elements;
    let mut covered = vec![false; num_elements];
    let mut assignment = vec![u32::MAX; num_elements];
    let mut cover = Vec::new();
    let mut uncovered_left = num_elements;
    let mut edges_examined = 0u64;

    let mut heap: BinaryHeap<(u32, Reverse<VertexId>)> = (0..num_sets as VertexId)
        .map(|s| (inst.graph.degree(s) as u32, Reverse(s)))
        .collect();

    while uncovered_left > 0 {
        let (claimed, Reverse(s)) = heap.pop().expect("uncovered elements but no sets left");
        if claimed == 0 {
            panic!("instance not coverable");
        }
        // Lazy re-key: recompute the true uncovered count.
        let actual = inst
            .graph
            .neighbors(s)
            .iter()
            .filter(|&&e| !covered[(e as usize) - num_sets])
            .count() as u32;
        edges_examined += inst.graph.degree(s) as u64;
        if actual < claimed {
            if actual > 0 {
                heap.push((actual, Reverse(s)));
            }
            continue;
        }
        // Choose s.
        cover.push(s);
        for &e in inst.graph.neighbors(s) {
            let ei = (e as usize) - num_sets;
            if !covered[ei] {
                covered[ei] = true;
                assignment[ei] = s;
                uncovered_left -= 1;
            }
        }
    }

    SetCoverResult {
        cover,
        assignment,
        rounds: 0,
        edges_examined,
    }
}

/// PBBS-style work-inefficient parallel set cover: the same bucketed MaNIS
/// rounds as Algorithm 3, but unchosen sets are **carried to the next
/// round and rescanned** instead of being rebucketed — every round touches
/// all undecided sets, the inefficiency the paper's Figure 5 exposes.
pub fn set_cover_pbbs_style(inst: &SetCoverInstance, eps: f64) -> SetCoverResult {
    assert!(eps > 0.0);
    let num_sets = inst.num_sets;
    let num_elements = inst.num_elements;
    let mut packed = PackedGraph::from_csr(&inst.graph);
    let el: Vec<AtomicU32> = (0..num_elements)
        .map(|_| AtomicU32::new(u32::MAX))
        .collect();
    let covered = AtomicBitSet::new(num_elements);
    let decided: Vec<AtomicU32> = (0..num_sets).map(|_| AtomicU32::new(0)).collect();
    let elem_idx = |e: VertexId| (e as usize) - num_sets;

    let max_deg = (0..num_sets as VertexId)
        .map(|s| inst.graph.degree(s))
        .max()
        .unwrap_or(0) as f64;
    let mut b = if max_deg >= 1.0 {
        (max_deg.ln() / (1.0 + eps).ln()).floor() as i64
    } else {
        -1
    };

    let mut rounds = 0u64;
    let mut edges_examined = 0u64;

    while b >= 0 {
        // Work-inefficiency: scan ALL undecided sets every round.
        let undecided: Vec<VertexId> =
            pack_index(num_sets, |s| decided[s].load(Ordering::SeqCst) == 0);
        if undecided.is_empty() {
            break;
        }
        rounds += 1;
        edges_examined += undecided
            .par_iter()
            .map(|&s| packed.degree(s) as u64)
            .sum::<u64>();

        // Pack covered elements out of every undecided set.
        let new_degs = packed.pack(&undecided, |_s, e| !covered.get(elem_idx(e)));
        let threshold_active = (1.0 + eps).powi(b as i32).ceil() as u32;
        let active: Vec<VertexId> = filter_map(
            &undecided
                .iter()
                .copied()
                .zip(new_degs.iter().copied())
                .collect::<Vec<_>>(),
            |&(s, deg)| {
                if deg >= threshold_active {
                    Some(s)
                } else {
                    None
                }
            },
        );
        // Sets with no uncovered elements left are decided (not in cover).
        undecided.par_iter().for_each(|&s| {
            if packed.degree(s) == 0 {
                decided[s as usize].store(2, Ordering::SeqCst);
            }
        });
        if active.is_empty() {
            b -= 1;
            continue;
        }

        // MaNIS step (identical to the Julienne version).
        active.par_iter().for_each(|&s| {
            for &e in packed.neighbors(s) {
                let ei = elem_idx(e);
                if !covered.get(ei) {
                    write_min_u32(&el[ei], s);
                }
            }
        });
        let threshold_win = (1.0 + eps).powi(b as i32 - 1);
        active.par_iter().for_each(|&s| {
            let won = packed
                .neighbors(s)
                .iter()
                .filter(|&&e| el[elem_idx(e)].load(Ordering::SeqCst) == s)
                .count();
            if won as f64 > threshold_win {
                decided[s as usize].store(1, Ordering::SeqCst); // in cover
            }
        });
        active.par_iter().for_each(|&s| {
            for &e in packed.neighbors(s) {
                let ei = elem_idx(e);
                if el[ei].load(Ordering::SeqCst) == s {
                    if decided[s as usize].load(Ordering::SeqCst) == 1 {
                        covered.set(ei);
                    } else {
                        el[ei].store(u32::MAX, Ordering::SeqCst);
                    }
                }
            }
        });
    }

    let cover: Vec<VertexId> = pack_index(num_sets, |s| decided[s].load(Ordering::SeqCst) == 1);
    SetCoverResult {
        cover,
        assignment: el.into_iter().map(AtomicU32::into_inner).collect(),
        rounds,
        edges_examined,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setcover::{cover, verify_cover, SetCoverParams};
    use julienne::query::QueryCtx;
    use julienne_graph::generators::set_cover_instance;

    fn julienne_cover(inst: &SetCoverInstance, eps: f64) -> SetCoverResult {
        cover(inst, &SetCoverParams { eps }, &QueryCtx::default()).unwrap()
    }

    #[test]
    fn greedy_covers_and_is_minimal_ish() {
        let inst = set_cover_instance(50, 2000, 3, 1);
        let r = set_cover_greedy_seq(&inst);
        assert!(verify_cover(&inst, &r.cover));
        assert!(!r.cover.is_empty() && r.cover.len() <= inst.num_sets);
        // Every element assigned to a cover set.
        assert!(r.assignment.iter().all(|&s| s != u32::MAX));
        // Greedy picks sets in non-increasing marginal-gain order; the first
        // pick must be a maximum-degree set.
        let max_deg = (0..inst.num_sets as u32)
            .map(|s| inst.graph.degree(s))
            .max()
            .unwrap();
        assert_eq!(inst.graph.degree(r.cover[0]), max_deg);
    }

    #[test]
    fn pbbs_style_covers() {
        for seed in 0..3 {
            let inst = set_cover_instance(80, 4000, 3, seed);
            let r = set_cover_pbbs_style(&inst, 0.01);
            assert!(verify_cover(&inst, &r.cover), "seed {seed}");
        }
    }

    #[test]
    fn pbbs_examines_more_edges_than_julienne() {
        let inst = set_cover_instance(400, 20_000, 4, 5);
        let jul = julienne_cover(&inst, 0.01);
        let pbbs = set_cover_pbbs_style(&inst, 0.01);
        assert!(verify_cover(&inst, &jul.cover));
        assert!(verify_cover(&inst, &pbbs.cover));
        assert!(
            pbbs.edges_examined > jul.edges_examined,
            "pbbs {} vs julienne {}",
            pbbs.edges_examined,
            jul.edges_examined
        );
    }

    #[test]
    fn covers_of_same_quality_family() {
        let inst = set_cover_instance(150, 8000, 4, 13);
        let jul = julienne_cover(&inst, 0.01);
        let pbbs = set_cover_pbbs_style(&inst, 0.01);
        let greedy = set_cover_greedy_seq(&inst);
        // All within a small constant of greedy.
        for (name, c) in [("jul", &jul.cover), ("pbbs", &pbbs.cover)] {
            let ratio = c.len() as f64 / greedy.cover.len() as f64;
            assert!(ratio < 2.5, "{name} ratio {ratio}");
        }
    }
}
