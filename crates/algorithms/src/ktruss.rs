//! k-truss decomposition by bucketed **edge** peeling — the "identifiers
//! represent other objects such as edges" application the paper envisions
//! in §3.1 (and that GBBS, Julienne's successor, ships).
//!
//! The trussness of an edge is the largest k such that the edge survives in
//! the k-truss (the maximal subgraph where every edge closes ≥ k − 2
//! triangles). Peeling mirrors k-core with edges in place of vertices and
//! triangle support in place of degree: extract the minimum-support bucket,
//! remove those edges, decrement the support of the other two edges of each
//! destroyed triangle (clamped at the current bucket), rebucket.
//!
//! Simultaneous removal needs care: when several edges of one triangle peel
//! in the same round, the triangle must be destroyed exactly once — the
//! minimum-id peeled edge is the designated owner of the decrements.

use crate::triangles::{edge_support, EdgeIndex};
use julienne::bucket::{BucketDest, BucketsBuilder, Order};
use julienne_ligra::traits::GraphRef;
use julienne_primitives::bitset::AtomicBitSet;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

/// Result of a truss decomposition.
#[derive(Clone, Debug)]
pub struct KtrussResult {
    /// Trussness of each undirected edge (edge ids from [`EdgeIndex`]);
    /// an edge in no triangle has trussness 2.
    pub trussness: Vec<u32>,
    /// Peeling rounds.
    pub rounds: u64,
    /// The largest trussness.
    pub max_truss: u32,
}

/// Work-efficient parallel truss decomposition over the bucket structure.
pub fn ktruss_julienne<G: GraphRef>(g: &G) -> KtrussResult {
    assert!(g.is_symmetric());
    let idx = EdgeIndex::new(g);
    let m = idx.num_edges();
    if m == 0 {
        return KtrussResult {
            trussness: vec![],
            rounds: 0,
            max_truss: 0,
        };
    }
    let support: Vec<AtomicU32> = edge_support(g, &idx)
        .into_iter()
        .map(AtomicU32::new)
        .collect();
    let alive = AtomicBitSet::new(m);
    for e in 0..m {
        alive.set(e);
    }
    let round_peel = AtomicBitSet::new(m);

    let d = |e: u32| support[e as usize].load(Ordering::SeqCst);
    let mut buckets = BucketsBuilder::new(m, d, Order::Increasing).build();

    let mut finished = 0usize;
    let mut rounds = 0u64;
    while finished < m {
        let (k, peeled) = buckets.next_bucket().expect("peel exhausted early");
        finished += peeled.len();
        rounds += 1;

        // Mark this round's peel set; the edges leave the graph now.
        peeled.par_iter().for_each(|&e| {
            round_peel.set(e as usize);
            alive.clear(e as usize);
        });

        // Destroy each triangle exactly once and emit bucket moves for the
        // decremented survivor edges.
        let moves: Vec<(u32, BucketDest)> = {
            let per_edge: Vec<Vec<(u32, BucketDest)>> = peeled
                .par_iter()
                .map(|&e| {
                    let (u, v) = idx.endpoints[e as usize];
                    let (nu, eu) = idx.arcs_of(u);
                    let (nv, ev) = idx.arcs_of(v);
                    let mut local: Vec<(u32, BucketDest)> = Vec::new();
                    // Merge-intersect the full sorted neighborhoods; resolve
                    // per-arc edge ids positionally.
                    let (mut i, mut j) = (0usize, 0usize);
                    while i < nu.len() && j < nv.len() {
                        match nu[i].cmp(&nv[j]) {
                            std::cmp::Ordering::Less => i += 1,
                            std::cmp::Ordering::Greater => j += 1,
                            std::cmp::Ordering::Equal => {
                                let e1 = eu[i];
                                let e2 = ev[j];
                                i += 1;
                                j += 1;
                                let p1 = round_peel.get(e1 as usize);
                                let p2 = round_peel.get(e2 as usize);
                                let a1 = alive.get(e1 as usize);
                                let a2 = alive.get(e2 as usize);
                                // Triangle must exist at round start: both
                                // other edges alive-then (= alive now or
                                // peeled this round).
                                if !((a1 || p1) && (a2 || p2)) {
                                    continue;
                                }
                                // Ownership: the minimum-id peeled edge of
                                // the triangle performs the decrements.
                                if (p1 && e1 < e) || (p2 && e2 < e) {
                                    continue;
                                }
                                for (other, is_peeled) in [(e1, p1), (e2, p2)] {
                                    if is_peeled {
                                        continue;
                                    }
                                    // CAS-decrement with clamping at k.
                                    loop {
                                        let s = support[other as usize].load(Ordering::SeqCst);
                                        if s <= k {
                                            break;
                                        }
                                        let new = (s - 1).max(k);
                                        if support[other as usize]
                                            .compare_exchange(
                                                s,
                                                new,
                                                Ordering::SeqCst,
                                                Ordering::SeqCst,
                                            )
                                            .is_ok()
                                        {
                                            let dest = buckets.get_bucket(s, new);
                                            if !dest.is_null() {
                                                local.push((other, dest));
                                            }
                                            break;
                                        }
                                    }
                                }
                            }
                        }
                    }
                    local
                })
                .collect();
            per_edge.into_iter().flatten().collect()
        };
        buckets.update_buckets(&moves);

        // Clear the round marks.
        peeled.par_iter().for_each(|&e| {
            round_peel.clear(e as usize);
        });
    }

    let peel: Vec<u32> = support.into_iter().map(AtomicU32::into_inner).collect();
    let trussness: Vec<u32> = peel.par_iter().map(|&s| s + 2).collect();
    let max_truss = trussness.iter().copied().max().unwrap_or(2);
    KtrussResult {
        trussness,
        rounds,
        max_truss,
    }
}

/// Sequential oracle: one-edge-at-a-time min-support peel with a lazy
/// bucket queue.
pub fn ktruss_seq<G: GraphRef>(g: &G) -> KtrussResult {
    assert!(g.is_symmetric());
    let idx = EdgeIndex::new(g);
    let m = idx.num_edges();
    if m == 0 {
        return KtrussResult {
            trussness: vec![],
            rounds: 0,
            max_truss: 0,
        };
    }
    let mut support = edge_support(g, &idx);
    let mut alive = vec![true; m];
    let max_s = support.iter().copied().max().unwrap_or(0) as usize;
    let mut queue: Vec<Vec<u32>> = vec![Vec::new(); max_s + 1];
    for (e, &s) in support.iter().enumerate() {
        queue[s as usize].push(e as u32);
    }
    let mut k = 0usize;
    let mut removed = 0usize;
    while removed < m {
        while k < queue.len() && queue[k].is_empty() {
            k += 1;
        }
        let e = queue[k].pop().unwrap();
        if !alive[e as usize] || support[e as usize] as usize != k {
            continue; // stale entry
        }
        alive[e as usize] = false;
        removed += 1;
        let (u, v) = idx.endpoints[e as usize];
        let (nu, eu) = idx.arcs_of(u);
        let (nv, ev) = idx.arcs_of(v);
        let (mut i, mut j) = (0usize, 0usize);
        while i < nu.len() && j < nv.len() {
            match nu[i].cmp(&nv[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    let (e1, e2) = (eu[i], ev[j]);
                    i += 1;
                    j += 1;
                    if alive[e1 as usize] && alive[e2 as usize] {
                        for other in [e1, e2] {
                            let s = support[other as usize];
                            if s as usize > k {
                                support[other as usize] = s - 1;
                                queue[(s - 1) as usize].push(other);
                            }
                        }
                    }
                }
            }
        }
    }
    let trussness: Vec<u32> = support.iter().map(|&s| s + 2).collect();
    let max_truss = trussness.iter().copied().max().unwrap_or(2);
    KtrussResult {
        trussness,
        rounds: m as u64,
        max_truss,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use julienne_graph::builder::from_pairs_symmetric;
    use julienne_graph::generators::{erdos_renyi, rmat, RmatParams};

    #[test]
    fn k4_is_a_4_truss() {
        let k4 = from_pairs_symmetric(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let r = ktruss_julienne(&k4);
        assert_eq!(r.trussness, vec![4; 6]);
        assert_eq!(r.max_truss, 4);
    }

    #[test]
    fn triangle_with_tail() {
        // Triangle {0,1,2} (trussness 3) + pendant edge 2-3 (trussness 2).
        let g = from_pairs_symmetric(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        let idx = EdgeIndex::new(&g);
        let r = ktruss_julienne(&g);
        for (e, &(u, v)) in idx.endpoints.iter().enumerate() {
            let want = if (u, v) == (2, 3) { 2 } else { 3 };
            assert_eq!(r.trussness[e], want, "edge ({u},{v})");
        }
    }

    #[test]
    fn matches_sequential_oracle_random() {
        for seed in 0..3 {
            let g = erdos_renyi(150, 2_000, seed, true);
            let par = ktruss_julienne(&g);
            let seq = ktruss_seq(&g);
            assert_eq!(par.trussness, seq.trussness, "seed {seed}");
        }
    }

    #[test]
    fn matches_sequential_oracle_heavy_tailed() {
        let g = rmat(9, 10, RmatParams::default(), 6, true);
        let par = ktruss_julienne(&g);
        let seq = ktruss_seq(&g);
        assert_eq!(par.trussness, seq.trussness);
        assert!(par.max_truss >= 3, "expect triangles in a dense R-MAT");
    }

    #[test]
    fn trussness_defines_nested_subgraphs() {
        // Every edge with trussness ≥ t must close ≥ t-2 triangles within
        // the subgraph of edges with trussness ≥ t (the defining property).
        let g = erdos_renyi(120, 1_800, 9, true);
        let idx = EdgeIndex::new(&g);
        let r = ktruss_julienne(&g);
        let t = r.max_truss;
        if t < 3 {
            return; // no triangles; nothing to check
        }
        let member: Vec<bool> = r.trussness.iter().map(|&x| x >= t).collect();
        for (e, &(u, v)) in idx.endpoints.iter().enumerate() {
            if !member[e] {
                continue;
            }
            let (nu, eu) = idx.arcs_of(u);
            let (nv, ev) = idx.arcs_of(v);
            let mut tri = 0u32;
            let (mut i, mut j) = (0usize, 0usize);
            while i < nu.len() && j < nv.len() {
                match nu[i].cmp(&nv[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        if member[eu[i] as usize] && member[ev[j] as usize] {
                            tri += 1;
                        }
                        i += 1;
                        j += 1;
                    }
                }
            }
            assert!(
                tri >= t - 2,
                "edge {e} in the {t}-truss closes only {tri} triangles"
            );
        }
    }

    #[test]
    fn triangle_free_graph_all_trussness_two() {
        use julienne_graph::generators::grid2d;
        let g = grid2d(10, 10);
        let r = ktruss_julienne(&g);
        assert!(r.trussness.iter().all(|&t| t == 2));
        assert_eq!(r.max_truss, 2);
    }
}
