//! Applications of the peeling order: degeneracy ordering and Charikar's
//! 2-approximate densest subgraph.
//!
//! The paper (footnote 1 and §4.1) notes that coreness values and the
//! peeling process have many downstream uses; these are the two classic
//! ones, built directly on the work-efficient bucketed peel.

use crate::kcore::{coreness, KcoreParams};
use julienne::bucket::{BucketsBuilder, Order};
use julienne::query::QueryCtx;
use julienne_graph::VertexId;
use julienne_ligra::edge_map_reduce::{edge_map_sum_with_scratch, SumScratch};
use julienne_ligra::traits::{GraphRef, OutEdges};
use std::sync::atomic::{AtomicU32, Ordering as AtomicOrdering};

/// A degeneracy ordering: vertices in the order the bucketed peel removes
/// them. Every vertex has at most `degeneracy` neighbors *later* in the
/// order — the defining property, checked by the tests.
#[derive(Clone, Debug)]
pub struct DegeneracyOrder {
    /// Peel order (all n vertices).
    pub order: Vec<VertexId>,
    /// The degeneracy (= k_max = the largest coreness).
    pub degeneracy: u32,
}

/// Computes a degeneracy ordering with the work-efficient peel.
pub fn degeneracy_order<G: OutEdges>(g: &G) -> DegeneracyOrder {
    let n = g.num_vertices();
    let degrees: Vec<AtomicU32> = (0..n)
        .map(|v| AtomicU32::new(g.out_degree(v as VertexId) as u32))
        .collect();
    let d = |i: u32| degrees[i as usize].load(AtomicOrdering::SeqCst);
    let mut buckets = BucketsBuilder::new(n, d, Order::Increasing).build();
    let scratch = SumScratch::new(n);

    let mut order = Vec::with_capacity(n);
    let mut degeneracy = 0u32;
    while order.len() < n {
        let (k, ids) = buckets.next_bucket().expect("peel exhausted early");
        degeneracy = degeneracy.max(k);
        let moved = edge_map_sum_with_scratch(
            g,
            &ids,
            |v, removed| {
                let induced = degrees[v as usize].load(AtomicOrdering::SeqCst);
                if induced > k {
                    let new_d = induced.saturating_sub(removed).max(k);
                    degrees[v as usize].store(new_d, AtomicOrdering::SeqCst);
                    let dest = buckets.get_bucket(induced, new_d);
                    (!dest.is_null()).then_some(dest)
                } else {
                    None
                }
            },
            |v| degrees[v as usize].load(AtomicOrdering::SeqCst) > k,
            &scratch,
        );
        buckets.update_buckets(moved.entries());
        order.extend(ids);
    }
    DegeneracyOrder { order, degeneracy }
}

/// Densest-subgraph statistics from the peel.
#[derive(Clone, Debug)]
pub struct DensestSubgraph {
    /// Vertices of the 2-approximate densest subgraph.
    pub vertices: Vec<VertexId>,
    /// Its density |E(S)| / |S|.
    pub density: f64,
}

/// Charikar's greedy 2-approximation: peel vertices in degeneracy order and
/// return the suffix maximising edge density. Runs in O(m + n) on top of
/// the bucketed peel.
pub fn densest_subgraph<G: GraphRef>(g: &G) -> DensestSubgraph {
    assert!(g.is_symmetric());
    let n = g.num_vertices();
    if n == 0 {
        return DensestSubgraph {
            vertices: vec![],
            density: 0.0,
        };
    }
    let peel = degeneracy_order(g);

    // Walk the peel order, tracking remaining undirected edges; the best
    // prefix-removal point maximises density of the remaining suffix.
    let mut removed = vec![false; n];
    let mut edges_left = g.num_edges() as f64 / 2.0;
    let mut best_density = edges_left / n as f64;
    let mut best_cut = 0usize; // remove order[..best_cut]
    for (i, &v) in peel.order.iter().enumerate() {
        let mut still = 0usize;
        g.for_each_out(v, |u, _| {
            if !removed[u as usize] {
                still += 1;
            }
        });
        edges_left -= still as f64;
        removed[v as usize] = true;
        let left = n - i - 1;
        if left > 0 {
            let density = edges_left / left as f64;
            if density > best_density {
                best_density = density;
                best_cut = i + 1;
            }
        }
    }
    DensestSubgraph {
        vertices: peel.order[best_cut..].to_vec(),
        density: best_density,
    }
}

/// Greedy graph coloring along the *reverse* degeneracy order: each vertex
/// sees at most `degeneracy` already-colored neighbors, so at most
/// `degeneracy + 1` colors are used — the classic corollary the bucketed
/// peel makes cheap.
pub fn greedy_coloring<G: GraphRef>(g: &G) -> Vec<u32> {
    assert!(g.is_symmetric());
    let n = g.num_vertices();
    let order = degeneracy_order(g);
    let mut color = vec![u32::MAX; n];
    let mut forbidden: Vec<u32> = Vec::new();
    for &v in order.order.iter().rev() {
        forbidden.clear();
        g.for_each_out(v, |u, _| {
            if color[u as usize] != u32::MAX {
                forbidden.push(color[u as usize]);
            }
        });
        forbidden.sort_unstable();
        forbidden.dedup();
        let mut c = 0u32;
        for &f in &forbidden {
            if f == c {
                c += 1;
            } else if f > c {
                break;
            }
        }
        color[v as usize] = c;
    }
    color
}

/// Bahmani–Kumar–Vassilvitskii (2+ε)-approximate densest subgraph:
/// repeatedly remove *all* vertices with degree ≤ 2(1+ε)·(current density),
/// keeping the best suffix. O(log_{1+ε} n) rounds — the low-depth
/// alternative to the exact Charikar peel above.
pub fn densest_subgraph_approx<G: GraphRef>(g: &G, eps: f64) -> DensestSubgraph {
    assert!(g.is_symmetric());
    assert!(eps > 0.0);
    let n = g.num_vertices();
    if n == 0 {
        return DensestSubgraph {
            vertices: vec![],
            density: 0.0,
        };
    }
    let degrees: Vec<AtomicU32> = (0..n)
        .map(|v| AtomicU32::new(g.out_degree(v as VertexId) as u32))
        .collect();
    let mut alive: Vec<bool> = vec![true; n];
    let mut live_vertices = n;
    let mut live_edges = g.num_edges() as f64 / 2.0;

    let mut best_density = live_edges / n as f64;
    let mut best: Vec<VertexId> = (0..n as VertexId).collect();

    while live_vertices > 0 {
        let density = live_edges / live_vertices as f64;
        if density > best_density {
            best_density = density;
            best = (0..n as VertexId).filter(|&v| alive[v as usize]).collect();
        }
        let threshold = (2.0 * (1.0 + eps) * density).ceil() as u32;
        let peel: Vec<VertexId> = julienne_primitives::filter::pack_index(n, |v| {
            alive[v] && degrees[v].load(AtomicOrdering::SeqCst) <= threshold
        });
        if peel.is_empty() {
            // Cannot happen: average degree is 2·density ≤ threshold, so
            // some vertex is always at or below it. Guard regardless.
            break;
        }
        let mut in_peel = vec![false; n];
        for &v in &peel {
            in_peel[v as usize] = true;
        }
        // Removed edges = peel→survivor crossings + peel-internal edges.
        let mut cross = 0u64;
        let mut internal_twice = 0u64;
        for &v in &peel {
            g.for_each_out(v, |u, _| {
                if in_peel[u as usize] {
                    internal_twice += 1;
                } else if alive[u as usize] {
                    degrees[u as usize].fetch_sub(1, AtomicOrdering::SeqCst);
                    cross += 1;
                }
            });
        }
        for &v in &peel {
            alive[v as usize] = false;
        }
        live_vertices -= peel.len();
        live_edges -= cross as f64 + (internal_twice / 2) as f64;
    }

    DensestSubgraph {
        vertices: best,
        density: best_density,
    }
}

/// Exact density of an induced subgraph (test helper; O(sum of degrees)).
pub fn induced_density<G: OutEdges>(g: &G, vs: &[VertexId]) -> f64 {
    if vs.is_empty() {
        return 0.0;
    }
    let mut member = vec![false; g.num_vertices()];
    for &v in vs {
        member[v as usize] = true;
    }
    let twice_edges: usize = vs
        .iter()
        .map(|&v| {
            let mut c = 0usize;
            g.for_each_out(v, |u, _| {
                if member[u as usize] {
                    c += 1;
                }
            });
            c
        })
        .sum();
    twice_edges as f64 / 2.0 / vs.len() as f64
}

/// The coreness lower bound: a graph with degeneracy k has a subgraph of
/// density ≥ k/2, so the densest subgraph has density ≥ k_max/2.
pub fn degeneracy_density_bound<G: OutEdges>(g: &G) -> f64 {
    let k_max = coreness(g, &KcoreParams::default(), &QueryCtx::default())
        .expect("uncancellable query")
        .coreness
        .into_iter()
        .max()
        .unwrap_or(0);
    k_max as f64 / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use julienne_graph::builder::from_pairs_symmetric;
    use julienne_graph::csr::Csr;
    use julienne_graph::generators::{erdos_renyi, rmat, RmatParams};

    fn check_order_property(g: &Csr<()>, ord: &DegeneracyOrder) {
        // Each vertex has ≤ degeneracy neighbors later in the order.
        let mut pos = vec![0usize; g.num_vertices()];
        for (i, &v) in ord.order.iter().enumerate() {
            pos[v as usize] = i;
        }
        for &v in &ord.order {
            let later = g
                .neighbors(v)
                .iter()
                .filter(|&&u| pos[u as usize] > pos[v as usize])
                .count();
            assert!(
                later <= ord.degeneracy as usize,
                "vertex {v} has {later} later neighbors > degeneracy {}",
                ord.degeneracy
            );
        }
    }

    #[test]
    fn order_property_random_graphs() {
        for seed in 0..3 {
            let g = erdos_renyi(500, 4_000, seed, true);
            let ord = degeneracy_order(&g);
            assert_eq!(ord.order.len(), 500);
            check_order_property(&g, &ord);
        }
    }

    #[test]
    fn degeneracy_equals_kmax() {
        let g = rmat(10, 8, RmatParams::default(), 5, true);
        let ord = degeneracy_order(&g);
        let k_max = coreness(&g, &KcoreParams::default(), &QueryCtx::default())
            .unwrap()
            .coreness
            .into_iter()
            .max()
            .unwrap();
        assert_eq!(ord.degeneracy, k_max);
        check_order_property(&g, &ord);
    }

    #[test]
    fn clique_is_its_own_densest_subgraph() {
        // 6-clique plus a long pendant path.
        let mut pairs = Vec::new();
        for i in 0..6u32 {
            for j in (i + 1)..6 {
                pairs.push((i, j));
            }
        }
        for i in 6..30u32 {
            pairs.push((i - 1, i));
        }
        let g = from_pairs_symmetric(30, &pairs);
        let ds = densest_subgraph(&g);
        let mut vs = ds.vertices.clone();
        vs.sort_unstable();
        assert_eq!(vs, vec![0, 1, 2, 3, 4, 5]);
        assert!((ds.density - 2.5).abs() < 1e-9); // C(6,2)/6 = 2.5
        assert!((induced_density(&g, &ds.vertices) - ds.density).abs() < 1e-9);
    }

    #[test]
    fn density_meets_degeneracy_bound() {
        let g = rmat(10, 12, RmatParams::default(), 9, true);
        let ds = densest_subgraph(&g);
        let bound = degeneracy_density_bound(&g);
        assert!(
            ds.density + 1e-9 >= bound,
            "density {} below k_max/2 bound {}",
            ds.density,
            bound
        );
        // Reported density must equal the actual induced density.
        assert!((induced_density(&g, &ds.vertices) - ds.density).abs() < 1e-6);
    }

    #[test]
    fn coloring_is_proper_and_bounded_by_degeneracy() {
        for seed in 0..3 {
            let g = erdos_renyi(400, 3_000, seed, true);
            let colors = greedy_coloring(&g);
            let degeneracy = degeneracy_order(&g).degeneracy;
            for v in 0..400u32 {
                assert_ne!(colors[v as usize], u32::MAX);
                for &u in g.neighbors(v) {
                    assert_ne!(colors[v as usize], colors[u as usize], "edge ({v},{u})");
                }
            }
            let used = colors.iter().copied().max().unwrap() + 1;
            assert!(
                used <= degeneracy + 1,
                "{used} colors > degeneracy {degeneracy} + 1 (seed {seed})"
            );
        }
    }

    #[test]
    fn bipartite_graph_two_colors() {
        use julienne_graph::generators::grid2d;
        let g = grid2d(15, 15);
        let colors = greedy_coloring(&g);
        assert!(colors.iter().copied().max().unwrap() < 3); // degeneracy 2 ⇒ ≤ 3
        for v in 0..g.num_vertices() as u32 {
            for &u in g.neighbors(v) {
                assert_ne!(colors[v as usize], colors[u as usize]);
            }
        }
    }

    #[test]
    fn approx_densest_within_factor_of_exact() {
        for seed in 0..3 {
            let g = rmat(10, 10, RmatParams::default(), seed, true);
            let exact = densest_subgraph(&g);
            let approx = densest_subgraph_approx(&g, 0.1);
            // 2(1+ε)-approximation.
            assert!(
                approx.density * 2.0 * 1.1 + 1e-9 >= exact.density,
                "approx {} vs exact {} (seed {seed})",
                approx.density,
                exact.density
            );
            // Reported density must match the actual induced density.
            assert!(
                (induced_density(&g, &approx.vertices) - approx.density).abs() < 1e-6,
                "density accounting broken (seed {seed})"
            );
        }
    }

    #[test]
    fn approx_on_clique_with_tail_finds_clique_region() {
        let mut pairs = Vec::new();
        for i in 0..8u32 {
            for j in (i + 1)..8 {
                pairs.push((i, j));
            }
        }
        for i in 8..40u32 {
            pairs.push((i - 1, i));
        }
        let g = from_pairs_symmetric(40, &pairs);
        let a = densest_subgraph_approx(&g, 0.05);
        // Exact densest density is 3.5 (the 8-clique); the approximation
        // must find something with at least half that.
        assert!(
            a.density >= 3.5 / (2.0 * 1.05) - 1e-9,
            "density {}",
            a.density
        );
    }

    #[test]
    fn empty_graph() {
        let g = from_pairs_symmetric(3, &[]);
        let ds = densest_subgraph(&g);
        assert_eq!(ds.density, 0.0);
        let ord = degeneracy_order(&g);
        assert_eq!(ord.degeneracy, 0);
        assert_eq!(ord.order.len(), 3);
    }
}
