//! Fused multi-source Δ-stepping / wBFS: one bucketed traversal that runs
//! many sources at once, each in its own **frontier lane**.
//!
//! The batch coalescer in the serve path groups compatible `sssp` queries
//! (same Δ, same graph epoch) and dispatches them here as one traversal.
//! Lane `l` of a batch of `L` sources owns the identifier stripe
//! `id = v·L + l`: a single [`Buckets`] structure over `L·n` identifiers
//! orders *all* lanes' annuli together, and each extraction relaxes the
//! union frontier. Because identifiers are vertex-major, sorting an
//! extracted frontier groups the lanes of one vertex adjacently, so a
//! vertex's adjacency list is decoded **once per round** no matter how many
//! lanes are visiting it — that sharing is the batching win on the
//! compressed backends.
//!
//! Lanes never interact: lane `l` only reads and writes `sp[v·L + l]`, so
//! per-lane dynamics are exactly the solo [`sssp`] dynamics and every lane's
//! `dist`, `rounds`, and `relaxations` are **bit-identical** to a solo run
//! from the same source (the scheduler-equivalence proptests pin this).
//! A lane's `rounds` counts only the extractions in which it had a
//! non-empty sub-frontier — the extraction sequence restricted to one lane
//! is precisely that lane's solo extraction sequence, because annuli come
//! out in increasing order and relaxation targets never move to a smaller
//! annulus than the current one.
//!
//! Cancellation is per-lane: every round polls each live lane's
//! [`QueryCtx`]; a cancelled or deadline-expired lane **detaches** — its
//! pending identifiers are dropped from subsequent frontiers and it reports
//! its lifecycle error — while sibling lanes run to completion untouched.
//! `identifiers_moved` is the one solo counter a fused run cannot
//! reproduce: the bucket structure is shared, so the per-lane value here
//! counts the lane's bucket-move requests instead (it is not part of the
//! wire report).
//!
//! [`Buckets`]: julienne::bucket::Buckets
//! [`sssp`]: crate::delta_stepping::sssp

use crate::delta_stepping::{annulus, DeltaResult};
use crate::INF;
use julienne::bucket::{BucketDest, Order, NULL_BKT};
use julienne::query::QueryCtx;
use julienne::Error;
use julienne_graph::VertexId;
use julienne_ligra::traits::OutEdges;
use julienne_primitives::atomics::write_min_u64;
use julienne_primitives::bitset::AtomicBitSet;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// One source in a fused batch: where it starts and the per-query context
/// that cancels or expires it independently of its siblings.
pub struct SsspLane<'a> {
    /// Source vertex (must be `< n`).
    pub src: VertexId,
    /// This lane's lifecycle context, polled at every round boundary.
    pub ctx: &'a QueryCtx,
}

/// Largest identifier count the fused structure can address: identifiers
/// are `u32` and `NULL_BKT` (= `u32::MAX`) is reserved.
const MAX_IDS: usize = u32::MAX as usize;

/// Runs Δ-stepping from every lane's source in one fused bucketed
/// traversal. Returns one result per lane, in lane order: `Ok` with a
/// [`DeltaResult`] bit-identical (dist / rounds / relaxations) to a solo
/// [`sssp`] run from that source, or the lane's own lifecycle `Err` if its
/// context tripped mid-run.
///
/// The outer `Err` is structural misuse — `delta == 0`, a source out of
/// range, or `lanes.len() · n` overflowing the `u32` identifier space (the
/// caller is expected to fall back to solo runs in that case).
///
/// The bucket window and parallel substrate come from the **first** lane's
/// engine; batches are formed within one session, so all lanes share it.
///
/// [`sssp`]: crate::delta_stepping::sssp
pub fn sssp_multi<G: OutEdges<W = u32>>(
    g: &G,
    delta: u64,
    lanes: &[SsspLane<'_>],
) -> Result<Vec<Result<DeltaResult, Error>>, Error> {
    if delta == 0 {
        return Err(Error::usage("delta must be >= 1"));
    }
    let lcount = lanes.len();
    if lcount == 0 {
        return Ok(Vec::new());
    }
    let n = g.num_vertices();
    let total = lcount
        .checked_mul(n)
        .filter(|&t| t <= MAX_IDS)
        .ok_or_else(|| {
            Error::input(format!(
                "fused batch of {lcount} lanes over n = {n} exceeds the u32 identifier space"
            ))
        })?;
    for lane in lanes {
        if lane.src as usize >= n {
            return Err(Error::input(format!(
                "src {} out of range (n = {n})",
                lane.src
            )));
        }
    }

    let sp: Vec<AtomicU64> = (0..total).map(|_| AtomicU64::new(INF)).collect();
    for (l, lane) in lanes.iter().enumerate() {
        sp[lane.src as usize * lcount + l].store(0, Ordering::SeqCst);
    }
    let flags = AtomicBitSet::new(total);
    // Round-start snapshot, mirroring the solo kernel: every relaxation
    // uses the frontier's distance as of extraction, so a round's outcome
    // is a pure function of the frontier set — independent of the order
    // lanes are interleaved in, which is what makes per-lane results
    // bit-identical to solo runs.
    let snap: Vec<AtomicU64> = (0..total).map(|_| AtomicU64::new(INF)).collect();
    let d_fun = |id: u32| {
        let s = sp[id as usize].load(Ordering::SeqCst);
        if s == INF {
            NULL_BKT
        } else {
            annulus(s, delta)
        }
    };
    let engine = lanes[0].ctx.engine();
    let mut buckets = engine.buckets(total, d_fun, Order::Increasing);

    let mut dead: Vec<Option<Error>> = (0..lcount).map(|_| None).collect();
    let mut live = lcount;
    let mut rounds = vec![0u64; lcount];
    let mut relaxations = vec![0u64; lcount];
    let mut moves = vec![0u64; lcount];
    let mut lane_hit = vec![false; lcount];

    loop {
        // Round boundary: poll every live lane. A tripped lane detaches —
        // recorded here, filtered out of every later frontier — without
        // touching its siblings' stripes.
        for (l, lane) in lanes.iter().enumerate() {
            if dead[l].is_none() {
                if let Err(e) = lane.ctx.check() {
                    dead[l] = Some(e);
                    live -= 1;
                }
            }
        }
        if live == 0 {
            break;
        }
        let Some((_bkt, mut ids)) = buckets.next_bucket() else {
            break;
        };
        if live < lcount {
            ids.retain(|&id| dead[id as usize % lcount].is_none());
        }
        if ids.is_empty() {
            continue;
        }
        // Vertex-major ids: sorting groups each vertex's lanes into one
        // contiguous run, decoded below with a single adjacency walk.
        ids.par_sort_unstable();
        ids.par_iter().for_each(|&id| {
            snap[id as usize].store(sp[id as usize].load(Ordering::SeqCst), Ordering::SeqCst)
        });
        lane_hit.iter_mut().for_each(|h| *h = false);
        for &id in &ids {
            let l = id as usize % lcount;
            lane_hit[l] = true;
            relaxations[l] += g.out_degree(id / lcount as u32) as u64;
        }
        for (l, &hit) in lane_hit.iter().enumerate() {
            rounds[l] += u64::from(hit);
        }
        let mut runs: Vec<(usize, usize)> = Vec::new();
        let mut s = 0;
        while s < ids.len() {
            let v = ids[s] / lcount as u32;
            let mut e = s + 1;
            while e < ids.len() && ids[e] / lcount as u32 == v {
                e += 1;
            }
            runs.push((s, e));
            s = e;
        }

        // Update: the solo visit protocol per (edge, lane) — flag CAS
        // electing the unique visitor that captures the round-start
        // distance — against each lane's own stripe.
        let moved: Vec<(u32, u64)> = runs
            .par_iter()
            .flat_map_iter(|&(s, e)| {
                let run = &ids[s..e];
                let v = run[0] / lcount as u32;
                let mut local: Vec<(u32, u64)> = Vec::new();
                g.for_each_out(v, |t, w| {
                    let t_base = t as usize * lcount;
                    for &id in run {
                        let nd = snap[id as usize].load(Ordering::SeqCst) + w as u64;
                        let tid = t_base + id as usize % lcount;
                        let od = sp[tid].load(Ordering::SeqCst);
                        if nd < od {
                            if flags.set(tid) {
                                write_min_u64(&sp[tid], nd);
                                local.push((tid as u32, od));
                            } else {
                                write_min_u64(&sp[tid], nd);
                            }
                        }
                    }
                });
                local
            })
            .collect();

        // Reset: clear flags and move each touched identifier from its
        // round-start annulus to the new one.
        let entries: Vec<(u32, BucketDest)> = moved
            .par_iter()
            .map(|&(tid, od)| {
                flags.clear(tid as usize);
                let nd = sp[tid as usize].load(Ordering::SeqCst);
                let prev = if od == INF {
                    NULL_BKT
                } else {
                    annulus(od, delta)
                };
                (tid, buckets.get_bucket(prev, annulus(nd, delta)))
            })
            .collect();
        for &(tid, _) in &entries {
            moves[tid as usize % lcount] += 1;
        }
        buckets.update_buckets(&entries);
    }

    drop(buckets); // releases the D closure's borrow of `sp`
    let dist: Vec<u64> = sp.into_iter().map(AtomicU64::into_inner).collect();
    Ok((0..lcount)
        .map(|l| match dead[l].take() {
            Some(e) => Err(e),
            None => Ok(DeltaResult {
                dist: (0..n).map(|v| dist[v * lcount + l]).collect(),
                rounds: rounds[l],
                relaxations: relaxations[l],
                identifiers_moved: moves[l],
            }),
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta_stepping::{sssp, SsspParams};
    use julienne::prelude::{CancelToken, Engine};
    use julienne_graph::csr::Csr;
    use julienne_graph::generators::{erdos_renyi, rmat, RmatParams};
    use julienne_graph::transform::{assign_weights, wbfs_weight_range};

    fn weighted(seed: u64, lo: u32, hi: u32) -> Csr<u32> {
        assign_weights(&erdos_renyi(400, 3200, seed, true), lo, hi, seed + 100)
    }

    fn solo<G: OutEdges<W = u32>>(g: &G, src: VertexId, delta: u64) -> DeltaResult {
        sssp(g, &SsspParams { src, delta }, &QueryCtx::default()).unwrap()
    }

    fn assert_lane_identical(fused: &DeltaResult, solo: &DeltaResult, tag: &str) {
        assert_eq!(fused.dist, solo.dist, "{tag}: dist");
        assert_eq!(fused.rounds, solo.rounds, "{tag}: rounds");
        assert_eq!(fused.relaxations, solo.relaxations, "{tag}: relaxations");
    }

    #[test]
    fn fused_lanes_match_solo_runs() {
        let g = weighted(3, 1, 1000);
        let ctx = QueryCtx::default();
        for delta in [1u64, 64, 32768] {
            let srcs = [0u32, 7, 7, 399];
            let lanes: Vec<SsspLane> = srcs
                .iter()
                .map(|&src| SsspLane { src, ctx: &ctx })
                .collect();
            let fused = sssp_multi(&g, delta, &lanes).unwrap();
            for (i, &src) in srcs.iter().enumerate() {
                let lane = fused[i].as_ref().unwrap();
                assert_lane_identical(
                    lane,
                    &solo(&g, src, delta),
                    &format!("delta {delta} src {src}"),
                );
            }
        }
    }

    #[test]
    fn fused_wbfs_on_compressed_backend_matches_solo() {
        use julienne_graph::compress::CompressedWGraph;
        let (lo, hi) = wbfs_weight_range(1 << 10);
        let g = assign_weights(&rmat(10, 8, RmatParams::default(), 2, true), lo, hi, 3);
        let cg = CompressedWGraph::from_csr(&g);
        let ctx = QueryCtx::default();
        let srcs = [0u32, 3, 11];
        let lanes: Vec<SsspLane> = srcs
            .iter()
            .map(|&src| SsspLane { src, ctx: &ctx })
            .collect();
        let fused = sssp_multi(&cg, 1, &lanes).unwrap();
        for (i, &src) in srcs.iter().enumerate() {
            let lane = fused[i].as_ref().unwrap();
            assert_lane_identical(lane, &solo(&g, src, 1), &format!("src {src}"));
        }
    }

    #[test]
    fn single_lane_batch_matches_solo() {
        let g = weighted(5, 1, 100_000);
        let ctx = QueryCtx::default();
        let fused = sssp_multi(&g, 1024, &[SsspLane { src: 13, ctx: &ctx }]).unwrap();
        assert_lane_identical(
            fused[0].as_ref().unwrap(),
            &solo(&g, 13, 1024),
            "single lane",
        );
    }

    #[test]
    fn cancelled_lane_detaches_without_poisoning_siblings() {
        let g = weighted(7, 1, 1000);
        let live_ctx = QueryCtx::default();
        // Trip after a few round-boundary polls so the doomed lane has
        // in-flight bucket entries when it detaches.
        let engine = Engine::default();
        let doomed_ctx =
            QueryCtx::from_engine(&engine).with_cancel_token(CancelToken::cancel_after_polls(3));
        let lanes = [
            SsspLane {
                src: 0,
                ctx: &live_ctx,
            },
            SsspLane {
                src: 5,
                ctx: &doomed_ctx,
            },
            SsspLane {
                src: 42,
                ctx: &live_ctx,
            },
        ];
        let fused = sssp_multi(&g, 64, &lanes).unwrap();
        assert!(
            matches!(fused[1], Err(Error::Cancelled)),
            "{:?}",
            fused[1].as_ref().err()
        );
        assert_lane_identical(fused[0].as_ref().unwrap(), &solo(&g, 0, 64), "sibling 0");
        assert_lane_identical(fused[2].as_ref().unwrap(), &solo(&g, 42, 64), "sibling 2");
    }

    #[test]
    fn all_lanes_cancelled_returns_all_errors() {
        let g = weighted(9, 1, 100);
        let token = CancelToken::new();
        token.cancel();
        let engine = Engine::default();
        let ctx = QueryCtx::from_engine(&engine).with_cancel_token(token);
        let lanes = [
            SsspLane { src: 0, ctx: &ctx },
            SsspLane { src: 1, ctx: &ctx },
        ];
        let fused = sssp_multi(&g, 16, &lanes).unwrap();
        for r in &fused {
            assert!(matches!(r, Err(Error::Cancelled)));
        }
    }

    #[test]
    fn structural_misuse_is_an_outer_error() {
        let g = weighted(1, 1, 10);
        let ctx = QueryCtx::default();
        assert!(sssp_multi(&g, 0, &[SsspLane { src: 0, ctx: &ctx }]).is_err());
        assert!(sssp_multi(
            &g,
            1,
            &[SsspLane {
                src: 400,
                ctx: &ctx
            }]
        )
        .is_err());
        assert!(sssp_multi::<Csr<u32>>(&g, 1, &[]).unwrap().is_empty());
    }
}
