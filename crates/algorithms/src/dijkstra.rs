//! Sequential Dijkstra (binary heap) — the stand-in for the DIMACS
//! shortest-path challenge solver in Table 3, and the correctness oracle
//! for every parallel SSSP implementation.

use crate::INF;
use julienne_graph::VertexId;
use julienne_ligra::traits::OutEdges;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Single-source shortest paths with nonnegative integer weights.
/// O((m + n) log n) with a binary heap and lazy deletion.
pub fn dijkstra<G: OutEdges<W = u32>>(g: &G, src: VertexId) -> Vec<u64> {
    let n = g.num_vertices();
    let mut dist = vec![INF; n];
    dist[src as usize] = 0;
    let mut heap: BinaryHeap<Reverse<(u64, VertexId)>> = BinaryHeap::new();
    heap.push(Reverse((0, src)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u as usize] {
            continue; // stale entry
        }
        g.for_each_out(u, |v, w| {
            let nd = d + w as u64;
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                heap.push(Reverse((nd, v)));
            }
        });
    }
    dist
}

/// Sequential Bellman–Ford (queue-based SPFA variant) — a second oracle
/// used to cross-check Dijkstra in the property tests.
pub fn bellman_ford_seq<G: OutEdges<W = u32>>(g: &G, src: VertexId) -> Vec<u64> {
    let n = g.num_vertices();
    let mut dist = vec![INF; n];
    dist[src as usize] = 0;
    let mut in_queue = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(src);
    in_queue[src as usize] = true;
    while let Some(u) = queue.pop_front() {
        in_queue[u as usize] = false;
        let du = dist[u as usize];
        g.for_each_out(u, |v, w| {
            let nd = du + w as u64;
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                if !in_queue[v as usize] {
                    in_queue[v as usize] = true;
                    queue.push_back(v);
                }
            }
        });
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use julienne_graph::builder::EdgeList;
    use julienne_graph::csr::Csr;
    use julienne_graph::generators::erdos_renyi;
    use julienne_graph::transform::assign_weights;

    fn diamond() -> Csr<u32> {
        // 0 →1(1)→3(1): dist 2 beats 0→2(5)→3(1): 6 and 0→3(10).
        let mut el: EdgeList<u32> = EdgeList::new(4);
        el.push(0, 1, 1);
        el.push(1, 3, 1);
        el.push(0, 2, 5);
        el.push(2, 3, 1);
        el.push(0, 3, 10);
        el.build(false)
    }

    #[test]
    fn shortest_path_through_middle() {
        let d = dijkstra(&diamond(), 0);
        assert_eq!(d, vec![0, 1, 5, 2]);
    }

    #[test]
    fn unreachable_is_inf() {
        let mut el: EdgeList<u32> = EdgeList::new(3);
        el.push(0, 1, 2);
        let g = el.build(false);
        let d = dijkstra(&g, 0);
        assert_eq!(d, vec![0, 2, INF]);
    }

    #[test]
    fn dijkstra_and_spfa_agree_on_random() {
        for seed in 0..3 {
            let g = assign_weights(&erdos_renyi(300, 2500, seed, false), 1, 100, seed);
            let a = dijkstra(&g, 0);
            let b = bellman_ford_seq(&g, 0);
            assert_eq!(a, b, "seed {seed}");
        }
    }

    #[test]
    fn source_distance_zero() {
        let g = assign_weights(&erdos_renyi(50, 200, 1, true), 1, 9, 2);
        assert_eq!(dijkstra(&g, 17)[17], 0);
    }
}
