//! Parallel filter / pack (the paper's `Filter`): O(n) work, O(log n) depth.
//!
//! Implemented as the classic flag–scan–scatter: per-chunk counts of
//! survivors, an exclusive scan of the counts, then a disjoint parallel
//! scatter into the exact-size output.

use crate::scan::prefix_sums;
use crate::unsafe_write::DisjointWriter;
use crate::{chunk_bounds, num_chunks};
use rayon::prelude::*;

/// Returns the elements of `xs` satisfying `pred`, in input order.
pub fn filter<T, F>(xs: &[T], pred: F) -> Vec<T>
where
    T: Copy + Send + Sync,
    F: Fn(&T) -> bool + Send + Sync,
{
    filter_map(xs, |x| if pred(x) { Some(*x) } else { None })
}

/// Applies `f` to each element in parallel and keeps the `Some` results, in
/// input order.
///
/// `f` is invoked **exactly once per element**, so it may carry side effects
/// (the framework relies on this: k-core's `Update` both mutates degrees and
/// computes a bucket destination inside one `filter_map` pass). The
/// implementation buffers per-chunk survivors and concatenates with a scan —
/// one extra copy, but safe for impure closures.
pub fn filter_map<T, U, F>(xs: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Copy + Send + Sync,
    F: Fn(&T) -> Option<U> + Send + Sync,
{
    let n = xs.len();
    let chunks = num_chunks(n);
    if chunks <= 1 {
        return xs.iter().filter_map(&f).collect();
    }

    // Single evaluation pass: per-chunk survivor buffers.
    let buffers: Vec<Vec<U>> = (0..chunks)
        .into_par_iter()
        .map(|c| {
            let (s, e) = chunk_bounds(n, chunks, c);
            xs[s..e].iter().filter_map(&f).collect()
        })
        .collect();

    // Concatenate at scanned offsets.
    let mut counts: Vec<usize> = buffers.iter().map(Vec::len).collect();
    let total = prefix_sums(&mut counts);
    let mut out: Vec<U> = Vec::with_capacity(total);
    {
        let writer = DisjointWriter::new(out.spare_capacity_mut());
        buffers
            .par_iter()
            .zip(counts.par_iter())
            .for_each(|(buf, &off)| {
                for (k, &u) in buf.iter().enumerate() {
                    // SAFETY: the scan gives each chunk a contiguous private
                    // destination range of exactly its buffer length.
                    unsafe { writer.write(off + k, std::mem::MaybeUninit::new(u)) };
                }
            });
    }
    // SAFETY: exactly `total` slots were initialised by the scatter.
    unsafe { out.set_len(total) };
    out
}

/// Returns the indices `i in 0..n` for which `pred(i)` holds (the PBBS
/// `pack_index` primitive), in increasing order.
///
/// `pred` must be **pure**: it is evaluated twice per index (count pass and
/// write pass).
pub fn pack_index<F>(n: usize, pred: F) -> Vec<u32>
where
    F: Fn(usize) -> bool + Send + Sync,
{
    let chunks = num_chunks(n);
    if chunks <= 1 {
        return (0..n).filter(|&i| pred(i)).map(|i| i as u32).collect();
    }
    let mut counts: Vec<usize> = (0..chunks)
        .into_par_iter()
        .map(|c| {
            let (s, e) = chunk_bounds(n, chunks, c);
            (s..e).filter(|&i| pred(i)).count()
        })
        .collect();
    let total = prefix_sums(&mut counts);
    let mut out: Vec<u32> = Vec::with_capacity(total);
    {
        let writer = DisjointWriter::new(out.spare_capacity_mut());
        counts.par_iter().enumerate().for_each(|(c, &off)| {
            let (s, e) = chunk_bounds(n, chunks, c);
            let mut k = off;
            for i in s..e {
                if pred(i) {
                    // SAFETY: disjoint destination ranges per chunk.
                    unsafe { writer.write(k, std::mem::MaybeUninit::new(i as u32)) };
                    k += 1;
                }
            }
        });
    }
    // SAFETY: exactly `total` slots initialised.
    unsafe { out.set_len(total) };
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_preserves_order() {
        for n in [0usize, 1, 100, 5000, 50_000] {
            let xs: Vec<u32> = (0..n as u32).collect();
            let got = filter(&xs, |&x| x % 3 == 0);
            let want: Vec<u32> = xs.iter().copied().filter(|&x| x % 3 == 0).collect();
            assert_eq!(got, want, "n={n}");
        }
    }

    #[test]
    fn filter_map_combines() {
        let xs: Vec<u32> = (0..10_000).collect();
        let got = filter_map(&xs, |&x| if x % 2 == 0 { Some(x / 2) } else { None });
        let want: Vec<u32> = (0..5_000).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn pack_index_matches_sequential() {
        for n in [0usize, 1, 17, 4096, 40_000] {
            let got = pack_index(n, |i| i % 7 == 2);
            let want: Vec<u32> = (0..n).filter(|&i| i % 7 == 2).map(|i| i as u32).collect();
            assert_eq!(got, want, "n={n}");
        }
    }

    #[test]
    fn filter_map_calls_closure_exactly_once_per_element() {
        // Regression test: k-core passes a side-effecting closure; a
        // two-pass implementation would double-apply the side effects and
        // desynchronise the passes.
        use std::sync::atomic::{AtomicU32, Ordering};
        let n = 100_000; // large enough to take the parallel path
        let calls: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        let xs: Vec<u32> = (0..n as u32).collect();
        let got = filter_map(&xs, |&x| {
            let prev = calls[x as usize].fetch_add(1, Ordering::Relaxed);
            assert_eq!(prev, 0, "element {x} visited twice");
            if x % 2 == 0 {
                Some(x)
            } else {
                None
            }
        });
        assert_eq!(got.len(), n / 2);
        assert!(calls.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn filter_all_and_none() {
        let xs: Vec<u32> = (0..10_000).collect();
        assert_eq!(filter(&xs, |_| true), xs);
        assert!(filter(&xs, |_| false).is_empty());
    }
}
