//! Prefix sums (`scan`) over associative operators.
//!
//! The paper's `Scan` takes an array, an associative operator ⊕ and an
//! identity ⊥ and returns the exclusive prefix array plus the overall sum,
//! in O(n) work and O(log n) depth. We implement the standard two-pass
//! chunked algorithm: chunk-local reductions, a (small) scan of the chunk
//! sums, then a chunk-local rescan with carried offsets. Because the chunks
//! are contiguous, both passes use safe `par_chunks_mut` parallelism.

use crate::{num_chunks, SEQ_THRESHOLD};
use rayon::prelude::*;

/// Exclusive scan in place: `x[i] <- ⊥ ⊕ x[0] ⊕ … ⊕ x[i-1]`. Returns the
/// total `⊥ ⊕ x[0] ⊕ … ⊕ x[n-1]`.
pub fn scan_exclusive_in_place<T, F>(xs: &mut [T], identity: T, op: F) -> T
where
    T: Copy + Send + Sync,
    F: Fn(T, T) -> T + Send + Sync,
{
    let n = xs.len();
    let chunks = num_chunks(n);
    if chunks <= 1 {
        let mut acc = identity;
        for x in xs.iter_mut() {
            let next = op(acc, *x);
            *x = acc;
            acc = next;
        }
        return acc;
    }
    let per = n.div_ceil(chunks);

    // Pass 1: per-chunk totals.
    let mut sums: Vec<T> = xs
        .par_chunks(per)
        .map(|chunk| chunk.iter().fold(identity, |acc, &x| op(acc, x)))
        .collect();

    // Scan the (small) sums array sequentially.
    let mut acc = identity;
    for s in sums.iter_mut() {
        let next = op(acc, *s);
        *s = acc;
        acc = next;
    }
    let total = acc;

    // Pass 2: chunk-local exclusive scans seeded with the chunk offset.
    xs.par_chunks_mut(per)
        .zip(sums.par_iter())
        .for_each(|(chunk, &seed)| {
            let mut acc = seed;
            for x in chunk.iter_mut() {
                let next = op(acc, *x);
                *x = acc;
                acc = next;
            }
        });
    total
}

/// Exclusive scan producing a fresh output array plus the total.
pub fn scan_exclusive<T, F>(xs: &[T], identity: T, op: F) -> (Vec<T>, T)
where
    T: Copy + Send + Sync,
    F: Fn(T, T) -> T + Send + Sync,
{
    let mut out = xs.to_vec();
    let total = scan_exclusive_in_place(&mut out, identity, op);
    (out, total)
}

/// Exclusive prefix-sums of `usize` counts — the workhorse for computing
/// scatter offsets. Returns the total.
pub fn prefix_sums(xs: &mut [usize]) -> usize {
    scan_exclusive_in_place(xs, 0usize, |a, b| a + b)
}

/// Inclusive scan producing a fresh output array.
pub fn scan_inclusive<T, F>(xs: &[T], identity: T, op: F) -> Vec<T>
where
    T: Copy + Send + Sync,
    F: Fn(T, T) -> T + Send + Sync,
{
    let n = xs.len();
    if n <= SEQ_THRESHOLD {
        let mut out = Vec::with_capacity(n);
        let mut acc = identity;
        for &x in xs {
            acc = op(acc, x);
            out.push(acc);
        }
        return out;
    }
    let (mut out, _) = scan_exclusive(xs, identity, &op);
    out.par_iter_mut().enumerate().for_each(|(i, o)| {
        *o = op(*o, xs[i]);
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exclusive_scan_matches_reference() {
        for n in [0usize, 1, 2, 100, 2048, 5000, 100_000] {
            let xs: Vec<u64> = (0..n as u64).map(|i| i % 17).collect();
            let (scanned, total) = scan_exclusive(&xs, 0u64, |a, b| a + b);
            let mut acc = 0u64;
            for i in 0..n {
                assert_eq!(scanned[i], acc, "n={n} i={i}");
                acc += xs[i];
            }
            assert_eq!(total, acc);
        }
    }

    #[test]
    fn prefix_sums_offsets() {
        let mut counts = vec![3usize, 0, 5, 1];
        let total = prefix_sums(&mut counts);
        assert_eq!(counts, vec![0, 3, 3, 8]);
        assert_eq!(total, 9);
    }

    #[test]
    fn inclusive_scan_matches_reference_small_and_large() {
        for n in [10usize, 10_000] {
            let xs: Vec<u32> = (1..=n as u32).collect();
            let inc = scan_inclusive(&xs, 0u32, |a, b| a.wrapping_add(b));
            let mut acc = 0u32;
            for i in 0..xs.len() {
                acc = acc.wrapping_add(xs[i]);
                assert_eq!(inc[i], acc);
            }
        }
    }

    #[test]
    fn scan_with_max_monoid() {
        let xs = vec![3u32, 9, 1, 7, 9, 2];
        let (ex, total) = scan_exclusive(&xs, 0u32, |a, b| a.max(b));
        assert_eq!(ex, vec![0, 3, 9, 9, 9, 9]);
        assert_eq!(total, 9);
    }

    #[test]
    fn empty_scan() {
        let mut xs: Vec<usize> = vec![];
        assert_eq!(prefix_sums(&mut xs), 0);
    }
}
