//! Semisort: reorder elements so equal keys become contiguous (Section 2).
//!
//! The theoretical algorithm of Gu et al. runs in O(n) expected work and
//! O(log n) depth w.h.p.; since our keys are dense 32-bit integers we realise
//! the same bounds with the stable parallel radix sort (constant passes for
//! bounded keys), which additionally orders the groups — a strictly stronger
//! guarantee that the callers don't rely on.

use crate::sort::radix_sort_by_key;

/// A contiguous group of equal keys inside a semisorted array.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KeyGroup {
    /// The shared key.
    pub key: u32,
    /// Start index of the group.
    pub start: usize,
    /// Number of elements in the group.
    pub len: usize,
}

/// Semisorts `items` in place by `key` (keys must be `<= max_key`) and
/// returns the group boundaries, one per distinct key, in key order.
pub fn semisort_by_key<T, F>(items: &mut Vec<T>, max_key: u32, key: F) -> Vec<KeyGroup>
where
    T: Copy + Send + Sync,
    F: Fn(&T) -> u32 + Send + Sync,
{
    radix_sort_by_key(items, max_key, &key);
    group_boundaries(items, key)
}

/// Computes the group boundaries of an already key-contiguous array.
///
/// This is the "map an indicator over starts, pack" step of the paper's
/// parallel `updateBuckets` (Section 3.2).
pub fn group_boundaries<T, F>(items: &[T], key: F) -> Vec<KeyGroup>
where
    T: Sync,
    F: Fn(&T) -> u32 + Send + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    // Pack the indices that start a new group…
    let starts = crate::filter::pack_index(n, |i| i == 0 || key(&items[i]) != key(&items[i - 1]));
    // …then pair each start with the next start to get lengths.
    let mut groups = Vec::with_capacity(starts.len());
    for (gi, &s) in starts.iter().enumerate() {
        let s = s as usize;
        let e = starts.get(gi + 1).map(|&x| x as usize).unwrap_or(n);
        groups.push(KeyGroup {
            key: key(&items[s]),
            start: s,
            len: e - s,
        });
    }
    groups
}

/// Hash-bucket semisort in the spirit of Gu–Shun–Sun–Blelloch (SPAA'15):
/// scatter elements into ~n/256 buckets by a hash of the key (blocked
/// histogram, one pass), then group each expected-O(1)-sized bucket locally.
/// O(n) expected work; groups come out in hash order, which is all the
/// semisort contract promises — unlike [`semisort_by_key`], which happens
/// to fully sort. Kept as the second implementation for the A1 ablation.
pub fn semisort_by_key_hashed<T, F>(items: &mut Vec<T>, key: F) -> Vec<KeyGroup>
where
    T: Copy + Send + Sync,
    F: Fn(&T) -> u32 + Send + Sync,
{
    use crate::histogram::blocked_histogram;
    use crate::rng::hash64;
    use crate::unsafe_write::DisjointWriter;

    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let num_buckets = (n / 256).max(1).next_power_of_two();
    let mask = (num_buckets - 1) as u64;
    let slot_of = |k: usize| Some((hash64(0x5E44, key(&items[k]) as u64) & mask) as usize);

    let hist = blocked_histogram(n, num_buckets, slot_of);
    let mut starts = hist.slot_totals.clone();
    let total = crate::scan::prefix_sums(&mut starts);
    debug_assert_eq!(total, n);

    let mut scattered: Vec<T> = Vec::with_capacity(n);
    {
        let w = DisjointWriter::new(scattered.spare_capacity_mut());
        hist.scatter(n, slot_of, |slot, pos, k| {
            // SAFETY: (slot, pos) pairs are unique; starts gives disjoint
            // bucket ranges.
            unsafe { w.write(starts[slot] + pos, std::mem::MaybeUninit::new(items[k])) };
        });
    }
    // SAFETY: all n slots written exactly once.
    unsafe { scattered.set_len(n) };

    // Group each bucket locally (stable key sort within the bucket).
    let mut bucket_ranges: Vec<(usize, usize)> = Vec::with_capacity(num_buckets);
    for (s, &start) in starts.iter().enumerate() {
        bucket_ranges.push((start, start + hist.slot_totals[s]));
    }
    for &(s, e) in &bucket_ranges {
        scattered[s..e].sort_by_key(|t| key(t));
    }

    *items = scattered;
    group_boundaries(items, key)
}

/// Counts occurrences of each distinct key via semisort; returns
/// `(key, count)` pairs in increasing key order. This is the sparse
/// histogram used by the histogram-based `edgeMapSum` ablation.
pub fn count_by_key(mut keys: Vec<u32>, max_key: u32) -> Vec<(u32, usize)> {
    let groups = semisort_by_key(&mut keys, max_key, |&k| k);
    groups.into_iter().map(|g| (g.key, g.len)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;
    use std::collections::HashMap;

    #[test]
    fn groups_cover_input_exactly() {
        let mut rng = SplitMix64::new(31);
        let mut items: Vec<(u32, u64)> = (0..50_000).map(|i| (rng.next_u32() % 300, i)).collect();
        let groups = semisort_by_key(&mut items, 299, |p| p.0);
        // Groups tile [0, n).
        let mut pos = 0;
        for g in &groups {
            assert_eq!(g.start, pos);
            assert!(g.len > 0);
            for t in &items[g.start..g.start + g.len] {
                assert_eq!(t.0, g.key);
            }
            pos += g.len;
        }
        assert_eq!(pos, items.len());
        // Distinct keys.
        for w in groups.windows(2) {
            assert!(w[0].key < w[1].key);
        }
    }

    #[test]
    fn count_by_key_matches_hashmap() {
        let mut rng = SplitMix64::new(77);
        let keys: Vec<u32> = (0..30_000).map(|_| rng.next_u32() % 97).collect();
        let mut want: HashMap<u32, usize> = HashMap::new();
        for &k in &keys {
            *want.entry(k).or_default() += 1;
        }
        let got = count_by_key(keys, 96);
        assert_eq!(got.len(), want.len());
        for (k, c) in got {
            assert_eq!(want[&k], c);
        }
    }

    #[test]
    fn empty_and_singleton() {
        let mut empty: Vec<u32> = vec![];
        assert!(semisort_by_key(&mut empty, 0, |&k| k).is_empty());
        let mut one = vec![5u32];
        let g = semisort_by_key(&mut one, 5, |&k| k);
        assert_eq!(
            g,
            vec![KeyGroup {
                key: 5,
                start: 0,
                len: 1
            }]
        );
    }

    #[test]
    fn hashed_semisort_groups_match_radix_semisort() {
        let mut rng = SplitMix64::new(55);
        let items: Vec<(u32, u64)> = (0..40_000).map(|i| (rng.next_u32() % 500, i)).collect();
        let mut a = items.clone();
        let mut b = items.clone();
        let ga = semisort_by_key(&mut a, 499, |p| p.0);
        let gb = semisort_by_key_hashed(&mut b, |p| p.0);
        // Same multiset of elements.
        let mut sa = a.clone();
        let mut sb = b.clone();
        sa.sort_unstable();
        sb.sort_unstable();
        assert_eq!(sa, sb);
        // Same groups (key, size) regardless of group order.
        let mut ka: Vec<(u32, usize)> = ga.iter().map(|g| (g.key, g.len)).collect();
        let mut kb: Vec<(u32, usize)> = gb.iter().map(|g| (g.key, g.len)).collect();
        ka.sort_unstable();
        kb.sort_unstable();
        assert_eq!(ka, kb);
        // Hashed output is key-contiguous per group.
        for g in &gb {
            for t in &b[g.start..g.start + g.len] {
                assert_eq!(t.0, g.key);
            }
        }
    }

    #[test]
    fn hashed_semisort_empty_and_tiny() {
        let mut empty: Vec<u32> = vec![];
        assert!(semisort_by_key_hashed(&mut empty, |&k| k).is_empty());
        let mut two = vec![9u32, 9];
        let g = semisort_by_key_hashed(&mut two, |&k| k);
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].len, 2);
    }

    #[test]
    fn all_equal_keys_single_group() {
        let mut items = vec![7u32; 10_000];
        let g = semisort_by_key(&mut items, 7, |&k| k);
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].len, 10_000);
    }
}
