//! Parallel reductions (the paper's `Reduce`): O(n) work, O(log n) depth.

use crate::SEQ_THRESHOLD;
use rayon::prelude::*;

/// Reduces `xs` with the associative operator `op` and identity `identity`.
pub fn reduce<T, F>(xs: &[T], identity: T, op: F) -> T
where
    T: Copy + Send + Sync,
    F: Fn(T, T) -> T + Send + Sync,
{
    if xs.len() <= SEQ_THRESHOLD {
        return xs.iter().fold(identity, |acc, &x| op(acc, x));
    }
    xs.par_iter().copied().reduce(|| identity, op)
}

/// Sum of `u64` values.
pub fn sum_u64(xs: &[u64]) -> u64 {
    reduce(xs, 0u64, |a, b| a + b)
}

/// Sum of `usize` values.
pub fn sum_usize(xs: &[usize]) -> usize {
    reduce(xs, 0usize, |a, b| a + b)
}

/// Maximum of `u32` values (0 for an empty slice).
pub fn max_u32(xs: &[u32]) -> u32 {
    reduce(xs, 0u32, |a, b| a.max(b))
}

/// Maximum over mapped values: `max_i f(i)` for `i in 0..n`, or `default` if
/// `n == 0`. Used e.g. to compute the initial number of buckets from `D`.
pub fn max_mapped<F>(n: usize, default: u32, f: F) -> u32
where
    F: Fn(usize) -> u32 + Send + Sync,
{
    if n == 0 {
        return default;
    }
    if n <= SEQ_THRESHOLD {
        return (0..n).map(&f).fold(default, |a, b| a.max(b));
    }
    (0..n)
        .into_par_iter()
        .map(&f)
        .reduce(|| default, |a, b| a.max(b))
}

/// Count of indices in `0..n` satisfying `pred`.
pub fn count_where<F>(n: usize, pred: F) -> usize
where
    F: Fn(usize) -> bool + Send + Sync,
{
    if n <= SEQ_THRESHOLD {
        return (0..n).filter(|&i| pred(i)).count();
    }
    (0..n).into_par_iter().filter(|&i| pred(i)).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduce_matches_fold() {
        for n in [0usize, 1, 100, 10_000] {
            let xs: Vec<u64> = (0..n as u64).collect();
            assert_eq!(sum_u64(&xs), xs.iter().sum::<u64>());
        }
    }

    #[test]
    fn max_of_empty_is_zero() {
        assert_eq!(max_u32(&[]), 0);
        assert_eq!(max_u32(&[5, 2, 9, 1]), 9);
    }

    #[test]
    fn max_mapped_handles_ranges() {
        assert_eq!(max_mapped(0, 7, |_| 100), 7);
        assert_eq!(max_mapped(10, 0, |i| (i * i) as u32), 81);
        assert_eq!(max_mapped(100_000, 0, |i| (i % 977) as u32), 976);
    }

    #[test]
    fn count_where_works() {
        assert_eq!(count_where(10, |i| i % 2 == 0), 5);
        assert_eq!(count_where(100_000, |i| i % 10 == 3), 10_000);
        assert_eq!(count_where(0, |_| true), 0);
    }

    #[test]
    fn sum_usize_works() {
        let xs = vec![1usize, 2, 3];
        assert_eq!(sum_usize(&xs), 6);
    }
}
