//! Engine-wide telemetry: counters, spans, and per-round trace records.
//!
//! Every number in the Julienne paper (rounds, frontier sizes, identifiers
//! moved, edges relaxed, sparse/dense decisions) is an *instrumented* claim,
//! so the framework carries a uniform instrumentation spine: a cheaply
//! clonable [`Telemetry`] handle threaded from the [`Engine`] down through
//! the bucket structure, the edgeMap engine, and the per-round loops of the
//! applications.
//!
//! The whole module is compiled in two shapes, selected by the `telemetry`
//! cargo feature (on by default):
//!
//! * **feature on** — [`Telemetry`] wraps an optional `Arc` of atomic
//!   counters plus a mutex-guarded trace of [`RoundRecord`]s. A *disabled*
//!   handle (the default) holds `None` and every operation is a branch on a
//!   null pointer; an *enabled* handle records.
//! * **feature off** — [`Telemetry`] is a zero-sized type and every method
//!   is an empty `#[inline(always)]` body: the counters and record
//!   construction compile out of the hot paths entirely.
//!
//! Both shapes expose the identical API, so no call site needs `cfg`.
//!
//! [`Engine`]: https://docs.rs/julienne (re-exported as `julienne::telemetry`)

/// Monotone event counters maintained by the framework.
///
/// The discriminants index a fixed atomic array, so `add` is a single
/// relaxed fetch-add when telemetry is enabled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Identifiers routed to a new bucket by `update_buckets`.
    IdentifiersMoved = 0,
    /// Identifiers handed to the application by `next_bucket`.
    IdentifiersExtracted,
    /// Non-empty buckets extracted by `next_bucket`.
    BucketsExtracted,
    /// Times the overflow bucket was re-split into open buckets.
    OverflowRedistributions,
    /// Edges examined by edgeMap traversals (both directions).
    EdgesScanned,
    /// Edges whose update function fired successfully (relaxations).
    EdgesRelaxed,
    /// Sparse (push) traversals chosen.
    SparseTraversals,
    /// Dense (pull) traversals chosen.
    DenseTraversals,
    /// Vertices appearing on processed frontiers.
    VerticesScanned,
    /// Algorithm rounds executed.
    Rounds,
}

impl Counter {
    /// Number of distinct counters (array size).
    pub const COUNT: usize = 10;

    /// All counters, in discriminant order.
    pub const ALL: [Counter; Counter::COUNT] = [
        Counter::IdentifiersMoved,
        Counter::IdentifiersExtracted,
        Counter::BucketsExtracted,
        Counter::OverflowRedistributions,
        Counter::EdgesScanned,
        Counter::EdgesRelaxed,
        Counter::SparseTraversals,
        Counter::DenseTraversals,
        Counter::VerticesScanned,
        Counter::Rounds,
    ];

    /// snake_case name used as the JSON key.
    pub fn name(self) -> &'static str {
        match self {
            Counter::IdentifiersMoved => "identifiers_moved",
            Counter::IdentifiersExtracted => "identifiers_extracted",
            Counter::BucketsExtracted => "buckets_extracted",
            Counter::OverflowRedistributions => "overflow_redistributions",
            Counter::EdgesScanned => "edges_scanned",
            Counter::EdgesRelaxed => "edges_relaxed",
            Counter::SparseTraversals => "sparse_traversals",
            Counter::DenseTraversals => "dense_traversals",
            Counter::VerticesScanned => "vertices_scanned",
            Counter::Rounds => "rounds",
        }
    }
}

/// Which traversal strategy a round used (the paper's direction
/// optimization decision).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TraversalKind {
    /// Sparse push traversal.
    Sparse,
    /// Dense pull traversal.
    Dense,
    /// Several traversals of mixed direction in one round.
    Mixed,
    /// No edge traversal this round (pure bucket work).
    #[default]
    None,
}

impl TraversalKind {
    /// Stable lower-case name used in JSON traces.
    pub fn as_str(self) -> &'static str {
        match self {
            TraversalKind::Sparse => "sparse",
            TraversalKind::Dense => "dense",
            TraversalKind::Mixed => "mixed",
            TraversalKind::None => "none",
        }
    }
}

/// One row of a per-round trace: everything Figures 1–2 and Table 3 of the
/// paper need to explain a run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RoundRecord {
    /// Zero-based round index.
    pub round: u32,
    /// Bucket id the round processed (`u32::MAX` when not bucket-driven).
    pub bucket: u32,
    /// Number of identifiers/vertices on the round's frontier.
    pub frontier: usize,
    /// Edges examined by traversals this round.
    pub edges_scanned: u64,
    /// Edges whose update fired (e.g. relaxations, decrements).
    pub edges_relaxed: u64,
    /// Traversal direction decision for the round.
    pub mode: TraversalKind,
    /// Wall-clock time for the round, microseconds.
    pub elapsed_us: u64,
}

impl RoundRecord {
    /// Renders the record as one JSON object.
    pub fn to_json(&self) -> String {
        let bucket: i64 = if self.bucket == u32::MAX {
            -1
        } else {
            self.bucket as i64
        };
        format!(
            "{{\"round\":{},\"bucket\":{},\"frontier\":{},\"edges_scanned\":{},\
             \"edges_relaxed\":{},\"mode\":\"{}\",\"elapsed_us\":{}}}",
            self.round,
            bucket,
            self.frontier,
            self.edges_scanned,
            self.edges_relaxed,
            self.mode.as_str(),
            self.elapsed_us
        )
    }
}

/// Escapes a string for inclusion in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// An immutable copy of a telemetry session, for reporting.
#[derive(Clone, Debug, Default)]
pub struct TelemetrySnapshot {
    /// `(counter name, value)` pairs in [`Counter::ALL`] order.
    pub counters: Vec<(&'static str, u64)>,
    /// The per-round trace, in recording order.
    pub rounds: Vec<RoundRecord>,
}

impl TelemetrySnapshot {
    /// Renders the snapshot as a structured JSON trace.
    ///
    /// Shape: `{"algorithm": .., "counters": {..}, "rounds": [..]}`.
    pub fn to_json(&self, algorithm: &str) -> String {
        let mut out = String::with_capacity(128 + 96 * self.rounds.len());
        out.push_str("{\"algorithm\":\"");
        out.push_str(&json_escape(algorithm));
        out.push_str("\",\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}\":{value}"));
        }
        out.push_str("},\"rounds\":[");
        for (i, r) in self.rounds.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&r.to_json());
        }
        out.push_str("]}");
        out
    }
}

#[cfg(feature = "telemetry")]
mod imp {
    use super::{Counter, RoundRecord, TelemetrySnapshot};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, Mutex};
    use std::time::Instant;

    struct Inner {
        counters: [AtomicU64; Counter::COUNT],
        rounds: Mutex<Vec<RoundRecord>>,
    }

    /// A cheaply clonable telemetry sink (see module docs).
    #[derive(Clone, Default)]
    pub struct Telemetry {
        inner: Option<Arc<Inner>>,
    }

    impl Telemetry {
        /// A recording sink.
        pub fn enabled() -> Self {
            Telemetry {
                inner: Some(Arc::new(Inner {
                    counters: std::array::from_fn(|_| AtomicU64::new(0)),
                    rounds: Mutex::new(Vec::new()),
                })),
            }
        }

        /// A no-op sink (the default).
        pub fn disabled() -> Self {
            Telemetry { inner: None }
        }

        /// Whether events are being recorded.
        #[inline]
        pub fn is_enabled(&self) -> bool {
            self.inner.is_some()
        }

        /// Adds `n` to a counter.
        #[inline]
        pub fn add(&self, counter: Counter, n: u64) {
            if let Some(inner) = &self.inner {
                inner.counters[counter as usize].fetch_add(n, Ordering::Relaxed);
            }
        }

        /// Adds 1 to a counter.
        #[inline]
        pub fn incr(&self, counter: Counter) {
            self.add(counter, 1);
        }

        /// Current value of a counter (0 when disabled).
        pub fn get(&self, counter: Counter) -> u64 {
            self.inner
                .as_ref()
                .map_or(0, |i| i.counters[counter as usize].load(Ordering::Relaxed))
        }

        /// Appends a round record to the trace.
        pub fn record_round(&self, record: RoundRecord) {
            if let Some(inner) = &self.inner {
                inner.rounds.lock().unwrap().push(record);
            }
        }

        /// Copies out the per-round trace (empty when disabled).
        pub fn rounds(&self) -> Vec<RoundRecord> {
            self.inner
                .as_ref()
                .map_or_else(Vec::new, |i| i.rounds.lock().unwrap().clone())
        }

        /// Starts a wall-clock span (a real timer only when recording).
        #[inline]
        pub fn span(&self) -> Span {
            Span {
                start: self.inner.as_ref().map(|_| Instant::now()),
            }
        }

        /// Resets all counters and clears the trace.
        pub fn reset(&self) {
            if let Some(inner) = &self.inner {
                for c in &inner.counters {
                    c.store(0, Ordering::Relaxed);
                }
                inner.rounds.lock().unwrap().clear();
            }
        }

        /// Snapshot of counters + trace for reporting.
        pub fn snapshot(&self) -> TelemetrySnapshot {
            TelemetrySnapshot {
                counters: Counter::ALL
                    .iter()
                    .map(|&c| (c.name(), self.get(c)))
                    .collect(),
                rounds: self.rounds(),
            }
        }
    }

    /// A started wall-clock measurement; query with [`Span::elapsed_us`].
    pub struct Span {
        start: Option<Instant>,
    }

    impl Span {
        /// Microseconds since the span started (0 for disabled sinks).
        #[inline]
        pub fn elapsed_us(&self) -> u64 {
            self.start.map_or(0, |s| s.elapsed().as_micros() as u64)
        }
    }
}

#[cfg(not(feature = "telemetry"))]
mod imp {
    use super::{Counter, RoundRecord, TelemetrySnapshot};

    /// Zero-sized no-op telemetry sink (the `telemetry` feature is off).
    ///
    /// Deliberately not `Copy`: the feature-on sink holds an `Arc` and is
    /// only `Clone`, so both shapes expose the same trait surface.
    #[derive(Clone, Default)]
    pub struct Telemetry;

    impl Telemetry {
        /// A "recording" sink — still a no-op in this build.
        #[inline(always)]
        pub fn enabled() -> Self {
            Telemetry
        }

        /// A no-op sink.
        #[inline(always)]
        pub fn disabled() -> Self {
            Telemetry
        }

        /// Always false: nothing records in this build.
        #[inline(always)]
        pub fn is_enabled(&self) -> bool {
            false
        }

        /// No-op.
        #[inline(always)]
        pub fn add(&self, _counter: Counter, _n: u64) {}

        /// No-op.
        #[inline(always)]
        pub fn incr(&self, _counter: Counter) {}

        /// Always 0.
        #[inline(always)]
        pub fn get(&self, _counter: Counter) -> u64 {
            0
        }

        /// No-op.
        #[inline(always)]
        pub fn record_round(&self, _record: RoundRecord) {}

        /// Always empty.
        #[inline(always)]
        pub fn rounds(&self) -> Vec<RoundRecord> {
            Vec::new()
        }

        /// A dead span.
        #[inline(always)]
        pub fn span(&self) -> Span {
            Span
        }

        /// No-op.
        #[inline(always)]
        pub fn reset(&self) {}

        /// Empty snapshot.
        #[inline(always)]
        pub fn snapshot(&self) -> TelemetrySnapshot {
            TelemetrySnapshot {
                counters: Counter::ALL.iter().map(|&c| (c.name(), 0)).collect(),
                rounds: Vec::new(),
            }
        }
    }

    /// Zero-sized span; always reports 0 elapsed time.
    pub struct Span;

    impl Span {
        /// Always 0 in this build.
        #[inline(always)]
        pub fn elapsed_us(&self) -> u64 {
            0
        }
    }
}

pub use imp::{Span, Telemetry};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_records_nothing() {
        let t = Telemetry::disabled();
        t.add(Counter::EdgesScanned, 42);
        t.record_round(RoundRecord::default());
        assert!(!t.is_enabled());
        assert_eq!(t.get(Counter::EdgesScanned), 0);
        assert!(t.rounds().is_empty());
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn enabled_sink_accumulates_counters() {
        let t = Telemetry::enabled();
        assert!(t.is_enabled());
        t.add(Counter::EdgesScanned, 40);
        t.incr(Counter::EdgesScanned);
        t.incr(Counter::Rounds);
        assert_eq!(t.get(Counter::EdgesScanned), 41);
        assert_eq!(t.get(Counter::Rounds), 1);
        assert_eq!(t.get(Counter::EdgesRelaxed), 0);

        let clone = t.clone();
        clone.add(Counter::EdgesRelaxed, 5);
        assert_eq!(t.get(Counter::EdgesRelaxed), 5, "clones share the sink");

        t.reset();
        assert_eq!(t.get(Counter::EdgesScanned), 0);
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn round_trace_preserves_order_and_fields() {
        let t = Telemetry::enabled();
        for round in 0..3u32 {
            t.record_round(RoundRecord {
                round,
                bucket: round * 2,
                frontier: 10 + round as usize,
                edges_scanned: 100,
                edges_relaxed: 7,
                mode: TraversalKind::Sparse,
                elapsed_us: 5,
            });
        }
        let rounds = t.rounds();
        assert_eq!(rounds.len(), 3);
        assert_eq!(rounds[1].round, 1);
        assert_eq!(rounds[1].bucket, 2);
        assert_eq!(rounds[2].frontier, 12);
    }

    #[test]
    fn snapshot_json_is_well_formed() {
        let t = Telemetry::enabled();
        t.add(Counter::EdgesScanned, 9);
        t.record_round(RoundRecord {
            round: 0,
            bucket: u32::MAX,
            frontier: 3,
            edges_scanned: 9,
            edges_relaxed: 2,
            mode: TraversalKind::Dense,
            elapsed_us: 11,
        });
        let json = t.snapshot().to_json("k-core");
        assert!(json.starts_with("{\"algorithm\":\"k-core\""));
        assert!(json.contains("\"rounds\":["));
        assert!(json.ends_with("]}"));
        #[cfg(feature = "telemetry")]
        {
            assert!(json.contains("\"edges_scanned\":9"));
            assert!(json.contains("\"bucket\":-1"), "NULL bucket encodes as -1");
            assert!(json.contains("\"mode\":\"dense\""));
        }
    }

    #[test]
    fn span_reports_time_only_when_enabled() {
        let off = Telemetry::disabled().span();
        assert_eq!(off.elapsed_us(), 0);
        let t = Telemetry::enabled();
        let span = t.span();
        // Not asserting a lower bound (clock granularity); just that the
        // call is well-formed in both feature shapes.
        let _ = span.elapsed_us();
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
