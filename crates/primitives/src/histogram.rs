//! The blocked-histogram kernel of Section 3.3.
//!
//! The paper's practical `updateBuckets` avoids the semisort's shuffle: it
//! splits the update array into blocks of length M (= 2048), counts per-block
//! how many identifiers go to each destination slot, scans those counts with
//! a stride of `num_slots` (column-major: slot-major, block-minor) so each
//! (block, slot) pair owns a private destination range, and finally scatters.
//! Depth is O(M + log n); work is linear.

use crate::scan::prefix_sums;
use rayon::prelude::*;

/// Paper value: block length for the blocked histogram.
pub const BLOCK_SIZE: usize = 2048;

/// The result of the counting phase: per-slot totals plus per-(block, slot)
/// exclusive offsets *within* each slot, ready for a disjoint scatter.
pub struct BlockedHistogram {
    /// Number of destination slots.
    pub num_slots: usize,
    /// Number of blocks the input was split into.
    pub num_blocks: usize,
    /// Block length used.
    pub block_size: usize,
    /// `slot_totals[s]` = number of items destined for slot `s`.
    pub slot_totals: Vec<usize>,
    /// `offsets[b * num_slots + s]` = exclusive start, within slot `s`'s
    /// destination array, of block `b`'s items for that slot.
    pub offsets: Vec<usize>,
}

/// Counts, per block, how many of the `n` items map to each slot.
/// `slot_of(i)` returns the destination slot of item `i`, or `None` for
/// items that should be ignored (the paper's `nullbkt` requests, which must
/// not incur random writes).
pub fn blocked_histogram<F>(n: usize, num_slots: usize, slot_of: F) -> BlockedHistogram
where
    F: Fn(usize) -> Option<usize> + Send + Sync,
{
    blocked_histogram_with(n, num_slots, BLOCK_SIZE, slot_of)
}

/// As [`blocked_histogram`] with an explicit block size (exposed for the
/// ablation benchmarks).
pub fn blocked_histogram_with<F>(
    n: usize,
    num_slots: usize,
    block_size: usize,
    slot_of: F,
) -> BlockedHistogram
where
    F: Fn(usize) -> Option<usize> + Send + Sync,
{
    assert!(block_size > 0);
    let num_blocks = n.div_ceil(block_size).max(1);

    // Per-block counting (each block is sequential, blocks run in parallel).
    let block_counts: Vec<Vec<usize>> = (0..num_blocks)
        .into_par_iter()
        .map(|b| {
            let s = b * block_size;
            let e = ((b + 1) * block_size).min(n);
            let mut counts = vec![0usize; num_slots];
            for i in s..e {
                if let Some(slot) = slot_of(i) {
                    debug_assert!(slot < num_slots);
                    counts[slot] += 1;
                }
            }
            counts
        })
        .collect();

    // Strided (column-major) exclusive scan: order (slot 0, blocks 0..B),
    // (slot 1, blocks 0..B), …
    let mut flat: Vec<usize> = Vec::with_capacity(num_slots * num_blocks);
    for s in 0..num_slots {
        for bc in &block_counts {
            flat.push(bc[s]);
        }
    }
    prefix_sums(&mut flat);

    // Slot totals and per-(block,slot) offsets *within* each slot.
    let mut slot_totals = vec![0usize; num_slots];
    let mut offsets = vec![0usize; num_blocks * num_slots];
    for s in 0..num_slots {
        let base = flat[s * num_blocks]; // global start of slot s
        let mut total = 0usize;
        for b in 0..num_blocks {
            offsets[b * num_slots + s] = flat[s * num_blocks + b] - base;
            total += block_counts[b][s];
        }
        slot_totals[s] = total;
    }

    BlockedHistogram {
        num_slots,
        num_blocks,
        block_size,
        slot_totals,
        offsets,
    }
}

impl BlockedHistogram {
    /// Runs the scatter phase: for each block in parallel, walks its items
    /// again and calls `write(slot, position_within_slot, item_index)` for
    /// each non-ignored item, at a position unique within that slot.
    ///
    /// `slot_of` must return the same answers as in the counting phase.
    pub fn scatter<F, W>(&self, n: usize, slot_of: F, write: W)
    where
        F: Fn(usize) -> Option<usize> + Send + Sync,
        W: Fn(usize, usize, usize) + Send + Sync,
    {
        let num_slots = self.num_slots;
        let block_size = self.block_size;
        (0..self.num_blocks).into_par_iter().for_each(|b| {
            let s = b * block_size;
            let e = ((b + 1) * block_size).min(n);
            let mut cursor = vec![0usize; num_slots];
            let base = &self.offsets[b * num_slots..(b + 1) * num_slots];
            for i in s..e {
                if let Some(slot) = slot_of(i) {
                    let pos = base[slot] + cursor[slot];
                    cursor[slot] += 1;
                    write(slot, pos, i);
                }
            }
        });
    }
}

/// Dense histogram convenience: counts occurrences of each key `< num_slots`.
pub fn histogram_dense(keys: &[u32], num_slots: usize) -> Vec<usize> {
    blocked_histogram(keys.len(), num_slots, |i| Some(keys[i] as usize)).slot_totals
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    #[test]
    fn dense_histogram_matches_reference() {
        let mut rng = SplitMix64::new(11);
        let keys: Vec<u32> = (0..100_000).map(|_| rng.next_u32() % 129).collect();
        let got = histogram_dense(&keys, 129);
        let mut want = vec![0usize; 129];
        for &k in &keys {
            want[k as usize] += 1;
        }
        assert_eq!(got, want);
    }

    #[test]
    fn scatter_positions_are_unique_and_complete() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let mut rng = SplitMix64::new(13);
        let n = 50_000;
        let num_slots = 64;
        let keys: Vec<Option<u32>> = (0..n)
            .map(|_| {
                let k = rng.next_u32() % 80;
                if k < 64 {
                    Some(k)
                } else {
                    None // ~20% ignored (nullbkt)
                }
            })
            .collect();
        let slot_of = |i: usize| keys[i].map(|k| k as usize);
        let h = blocked_histogram(n, num_slots, slot_of);

        // Destination arrays sized by slot_totals, filled with sentinel.
        let dests: Vec<Vec<AtomicU32>> = h
            .slot_totals
            .iter()
            .map(|&t| (0..t).map(|_| AtomicU32::new(u32::MAX)).collect())
            .collect();
        h.scatter(n, slot_of, |slot, pos, i| {
            let prev = dests[slot][pos].swap(i as u32, Ordering::Relaxed);
            assert_eq!(prev, u32::MAX, "position written twice");
        });
        // Every slot fully populated with items of the right key.
        for (s, d) in dests.iter().enumerate() {
            for a in d {
                let i = a.load(Ordering::Relaxed);
                assert_ne!(i, u32::MAX, "hole in slot {s}");
                assert_eq!(keys[i as usize], Some(s as u32));
            }
        }
    }

    #[test]
    fn small_block_size_still_correct() {
        let keys: Vec<u32> = (0..1000).map(|i| (i % 7) as u32).collect();
        let h = blocked_histogram_with(keys.len(), 7, 16, |i| Some(keys[i] as usize));
        let mut want = vec![0usize; 7];
        for &k in &keys {
            want[k as usize] += 1;
        }
        assert_eq!(h.slot_totals, want);
        assert_eq!(h.num_blocks, 1000usize.div_ceil(16));
    }

    #[test]
    fn empty_input() {
        let h = blocked_histogram(0, 4, |_| Some(0));
        assert_eq!(h.slot_totals, vec![0; 4]);
        h.scatter(0, |_| Some(0), |_, _, _| panic!("no items"));
    }

    #[test]
    fn all_ignored() {
        let h = blocked_histogram(10_000, 8, |_| None);
        assert_eq!(h.slot_totals, vec![0; 8]);
    }
}
