//! Atomic primitives of Section 2: `CAS` and `writeMin`/`writeMax`.
//!
//! The paper assumes `CAS` and `writeMin` take O(1) work; on modern hardware
//! both compile to a (possibly retried) `lock cmpxchg`. `writeMin` is the
//! priority-update primitive of Shun et al. (SPAA 2013): it only issues a
//! write when it would actually lower the stored value, which keeps
//! contention low when many threads race toward the same minimum.
//!
//! All operations use `SeqCst` ordering: the Δ-stepping visit protocol of
//! Algorithm 2 (flag CAS before `writeMin`) is only correct when the flag
//! winner is guaranteed to have read a pre-round distance, which needs a
//! single total order over the flag and distance operations. On x86-64 the
//! RMW instructions are full fences anyway, so this costs nothing on the
//! paper's (and our) hardware.

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};

/// Atomically sets `*loc = min(*loc, value)`. Returns `true` iff this call
/// strictly lowered the stored value (i.e. this thread's write "won").
#[inline]
pub fn write_min_u32(loc: &AtomicU32, value: u32) -> bool {
    let mut cur = loc.load(Ordering::SeqCst);
    while value < cur {
        match loc.compare_exchange_weak(cur, value, Ordering::SeqCst, Ordering::SeqCst) {
            Ok(_) => return true,
            Err(actual) => cur = actual,
        }
    }
    false
}

/// Atomically sets `*loc = min(*loc, value)` for 64-bit values.
#[inline]
pub fn write_min_u64(loc: &AtomicU64, value: u64) -> bool {
    let mut cur = loc.load(Ordering::SeqCst);
    while value < cur {
        match loc.compare_exchange_weak(cur, value, Ordering::SeqCst, Ordering::SeqCst) {
            Ok(_) => return true,
            Err(actual) => cur = actual,
        }
    }
    false
}

/// Atomically sets `*loc = max(*loc, value)`. Returns `true` iff this call
/// strictly raised the stored value.
#[inline]
pub fn write_max_u32(loc: &AtomicU32, value: u32) -> bool {
    let mut cur = loc.load(Ordering::SeqCst);
    while value > cur {
        match loc.compare_exchange_weak(cur, value, Ordering::SeqCst, Ordering::SeqCst) {
            Ok(_) => return true,
            Err(actual) => cur = actual,
        }
    }
    false
}

/// One-shot compare-and-swap, the paper's `CAS(loc, oldV, newV)`.
#[inline]
pub fn cas_u32(loc: &AtomicU32, old: u32, new: u32) -> bool {
    loc.compare_exchange(old, new, Ordering::SeqCst, Ordering::SeqCst)
        .is_ok()
}

/// One-shot compare-and-swap on `usize`.
#[inline]
pub fn cas_usize(loc: &AtomicUsize, old: usize, new: usize) -> bool {
    loc.compare_exchange(old, new, Ordering::SeqCst, Ordering::SeqCst)
        .is_ok()
}

/// Converts an owned `Vec<u32>` into a `Vec<AtomicU32>` so parallel phases
/// can mutate it, without copying element storage semantics (each element is
/// moved once).
pub fn into_atomic_u32(v: Vec<u32>) -> Vec<AtomicU32> {
    v.into_iter().map(AtomicU32::new).collect()
}

/// Converts a `Vec<AtomicU32>` back into plain values once parallel phases
/// are done.
pub fn from_atomic_u32(v: Vec<AtomicU32>) -> Vec<u32> {
    v.into_iter().map(AtomicU32::into_inner).collect()
}

/// Converts an owned `Vec<u64>` into a `Vec<AtomicU64>`.
pub fn into_atomic_u64(v: Vec<u64>) -> Vec<AtomicU64> {
    v.into_iter().map(AtomicU64::new).collect()
}

/// Converts a `Vec<AtomicU64>` back into plain values.
pub fn from_atomic_u64(v: Vec<AtomicU64>) -> Vec<u64> {
    v.into_iter().map(AtomicU64::into_inner).collect()
}

/// Allocates `n` atomics initialised to `init`.
pub fn atomic_u32_filled(n: usize, init: u32) -> Vec<AtomicU32> {
    (0..n).map(|_| AtomicU32::new(init)).collect()
}

/// Allocates `n` 64-bit atomics initialised to `init`.
pub fn atomic_u64_filled(n: usize, init: u64) -> Vec<AtomicU64> {
    (0..n).map(|_| AtomicU64::new(init)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn write_min_sequential_semantics() {
        let a = AtomicU32::new(10);
        assert!(write_min_u32(&a, 5));
        assert!(!write_min_u32(&a, 5)); // equal: no write
        assert!(!write_min_u32(&a, 7)); // larger: no write
        assert_eq!(a.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn write_max_sequential_semantics() {
        let a = AtomicU32::new(10);
        assert!(write_max_u32(&a, 15));
        assert!(!write_max_u32(&a, 15));
        assert!(!write_max_u32(&a, 3));
        assert_eq!(a.load(Ordering::SeqCst), 15);
    }

    #[test]
    fn write_min_parallel_exactly_one_winner_per_level() {
        // Many threads race; final value must be the global minimum and the
        // number of "won" returns for the winning value must be exactly 1.
        let a = AtomicU32::new(u32::MAX);
        let wins: usize = (0..10_000u32)
            .into_par_iter()
            .map(|i| usize::from(write_min_u32(&a, i % 97)))
            .sum();
        assert_eq!(a.load(Ordering::SeqCst), 0);
        // At least one win (the one that stored 0), and wins are bounded by
        // the number of distinct descending records, <= 97.
        assert!((1..=97).contains(&wins));
    }

    #[test]
    fn cas_succeeds_once() {
        let a = AtomicU32::new(0);
        let successes: usize = (0..1000u32)
            .into_par_iter()
            .map(|_| usize::from(cas_u32(&a, 0, 1)))
            .sum();
        assert_eq!(successes, 1);
        assert_eq!(a.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn atomic_roundtrip() {
        let v = vec![3u32, 1, 4, 1, 5];
        let a = into_atomic_u32(v.clone());
        assert_eq!(from_atomic_u32(a), v);
        let v64 = vec![3u64, 1, 4];
        let a64 = into_atomic_u64(v64.clone());
        assert_eq!(from_atomic_u64(a64), v64);
    }

    #[test]
    fn filled_constructors() {
        let a = atomic_u32_filled(4, 9);
        assert!(a.iter().all(|x| x.load(Ordering::SeqCst) == 9));
        let b = atomic_u64_filled(3, u64::MAX);
        assert!(b.iter().all(|x| x.load(Ordering::SeqCst) == u64::MAX));
    }

    #[test]
    fn write_min_u64_works() {
        let a = AtomicU64::new(u64::MAX);
        assert!(write_min_u64(&a, 42));
        assert!(!write_min_u64(&a, 43));
        assert_eq!(a.load(Ordering::SeqCst), 42);
    }
}
