//! Plain and atomic bitsets, used for the dense representation of
//! `vertexSubset` and for duplicate removal in `edgeMap`.

use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// A fixed-length bitset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitSet {
    len: usize,
    words: Vec<u64>,
}

impl BitSet {
    /// An all-zero bitset of length `len`.
    pub fn new(len: usize) -> Self {
        BitSet {
            len,
            words: vec![0; len.div_ceil(64)],
        }
    }

    /// Builds a bitset with the given indices set.
    pub fn from_indices(len: usize, indices: &[u32]) -> Self {
        let mut bs = BitSet::new(len);
        for &i in indices {
            bs.set(i as usize);
        }
        bs
    }

    /// Logical length in bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the logical length is zero.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tests bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Sets bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Clears bit `i`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] &= !(1 << (i % 64));
    }

    /// Number of set bits (parallel popcount).
    pub fn count_ones(&self) -> usize {
        if self.words.len() < 4096 {
            self.words.iter().map(|w| w.count_ones() as usize).sum()
        } else {
            self.words.par_iter().map(|w| w.count_ones() as usize).sum()
        }
    }

    /// Collects the set indices in increasing order.
    pub fn to_indices(&self) -> Vec<u32> {
        crate::filter::pack_index(self.len, |i| self.get(i))
    }

    /// Iterates over set bits of one word-aligned block; used by dense
    /// traversals.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Iterates the set bit indices in increasing order without allocating
    /// (unlike [`BitSet::to_indices`]).
    pub fn iter_ones(&self) -> OnesIter<'_> {
        OnesIter {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }
}

/// Iterator over the set bits of a [`BitSet`], lowest index first.
pub struct OnesIter<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for OnesIter<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1; // clear lowest set bit
        Some(self.word_idx * 64 + bit)
    }
}

/// A fixed-length bitset supporting concurrent `set` with a "did I win"
/// result — the test-and-set used to deduplicate `edgeMap` outputs.
pub struct AtomicBitSet {
    len: usize,
    words: Vec<AtomicU64>,
}

impl AtomicBitSet {
    /// An all-zero atomic bitset of length `len`.
    pub fn new(len: usize) -> Self {
        AtomicBitSet {
            len,
            words: (0..len.div_ceil(64)).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Logical length in bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the logical length is zero.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Atomically sets bit `i`; returns `true` iff this call flipped it from
    /// 0 to 1 (i.e. the caller "won" the bit).
    #[inline]
    pub fn set(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let mask = 1u64 << (i % 64);
        let prev = self.words[i / 64].fetch_or(mask, Ordering::SeqCst);
        prev & mask == 0
    }

    /// Tests bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i / 64].load(Ordering::SeqCst) >> (i % 64)) & 1 == 1
    }

    /// Atomically clears bit `i` (used to reset per-round visit flags).
    #[inline]
    pub fn clear(&self, i: usize) {
        debug_assert!(i < self.len);
        let mask = !(1u64 << (i % 64));
        self.words[i / 64].fetch_and(mask, Ordering::SeqCst);
    }

    /// Freezes into a plain [`BitSet`].
    pub fn into_bitset(self) -> BitSet {
        BitSet {
            len: self.len,
            words: self.words.into_iter().map(AtomicU64::into_inner).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let mut bs = BitSet::new(130);
        assert!(!bs.get(0));
        bs.set(0);
        bs.set(64);
        bs.set(129);
        assert!(bs.get(0) && bs.get(64) && bs.get(129));
        assert!(!bs.get(1) && !bs.get(63) && !bs.get(128));
        assert_eq!(bs.count_ones(), 3);
        bs.clear(64);
        assert!(!bs.get(64));
        assert_eq!(bs.count_ones(), 2);
    }

    #[test]
    fn from_and_to_indices_roundtrip() {
        let idx = vec![3u32, 7, 64, 65, 127];
        let bs = BitSet::from_indices(128, &idx);
        assert_eq!(bs.to_indices(), idx);
    }

    #[test]
    fn iter_ones_matches_to_indices() {
        for idx in [vec![], vec![0u32], vec![3, 7, 63, 64, 65, 127, 128, 200]] {
            let bs = BitSet::from_indices(260, &idx);
            let via_iter: Vec<u32> = bs.iter_ones().map(|i| i as u32).collect();
            assert_eq!(via_iter, bs.to_indices());
        }
        assert_eq!(BitSet::new(0).iter_ones().count(), 0);
    }

    #[test]
    fn atomic_set_reports_winner_once() {
        use rayon::prelude::*;
        let bs = AtomicBitSet::new(1000);
        let wins: usize = (0..10_000usize)
            .into_par_iter()
            .map(|i| usize::from(bs.set(i % 1000)))
            .sum();
        assert_eq!(wins, 1000);
        let frozen = bs.into_bitset();
        assert_eq!(frozen.count_ones(), 1000);
    }

    #[test]
    fn empty_sets() {
        let bs = BitSet::new(0);
        assert!(bs.is_empty());
        assert_eq!(bs.count_ones(), 0);
        let abs = AtomicBitSet::new(0);
        assert!(abs.is_empty());
        assert_eq!(abs.len(), 0);
    }

    #[test]
    fn large_parallel_popcount() {
        let n = 64 * 5000; // force parallel path
        let mut bs = BitSet::new(n);
        for i in (0..n).step_by(3) {
            bs.set(i);
        }
        assert_eq!(bs.count_ones(), n.div_ceil(3));
    }
}
