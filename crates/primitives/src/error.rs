//! The workspace-wide typed error enum.
//!
//! Until PR 5 every fallible layer spoke its own dialect: graph loaders
//! returned `io::Result` with stringly `InvalidData` payloads,
//! `Backend::parse` returned `Result<_, String>`, and the CLI re-formatted
//! both into its own `CmdError` strings. [`Error`] is the single currency
//! all of them now trade in; the CLI's `CmdError` and the server's
//! wire-level error objects are thin views over it (exit code / wire code
//! respectively), not re-parsers of display strings.
//!
//! The variants are deliberately coarse — they encode *how the caller
//! should react*, not where the error was minted:
//!
//! * [`Error::Io`] — the operating system failed us (open/read/write).
//!   Retrying with the same arguments might succeed.
//! * [`Error::Parse`] — the bytes were readable but malformed, with the
//!   file and 1-based line when known. Retrying is pointless; fix the file.
//! * [`Error::Usage`] — the *request* was malformed (bad option value,
//!   unknown algorithm). Maps to CLI exit 2 / wire code `"usage"`.
//! * [`Error::Input`] — the request was well-formed but this data cannot
//!   satisfy it (empty graph, asymmetric graph where symmetry is required,
//!   source vertex out of range).
//! * [`Error::Cancelled`] / [`Error::DeadlineExceeded`] — the query
//!   lifecycle ended the run at a round boundary; no partial output exists.

use std::fmt;
use std::path::{Path, PathBuf};

/// A structured error from any layer of the workspace. See the module docs
/// for the reaction each variant calls for.
#[derive(Debug)]
pub enum Error {
    /// An operating-system I/O failure, with the path involved when known.
    Io {
        /// File being read or written, if the failure involved one.
        path: Option<PathBuf>,
        /// The underlying OS error.
        source: std::io::Error,
    },
    /// Malformed input data, positioned by file and 1-based line when known.
    Parse {
        /// File being parsed, if known.
        path: Option<PathBuf>,
        /// 1-based line number of the offending record, if known.
        line: Option<usize>,
        /// What was wrong with the record.
        msg: String,
    },
    /// The request itself was malformed (CLI exit 2, wire code `"usage"`).
    Usage(String),
    /// The request was well-formed but the data cannot satisfy it.
    Input(String),
    /// The query's cancellation token was triggered; the run stopped at a
    /// round boundary and produced no output.
    Cancelled,
    /// The query's deadline passed; the run stopped at a round boundary and
    /// produced no output.
    DeadlineExceeded,
}

impl Error {
    /// An [`Error::Io`] tagged with the file it concerned.
    pub fn io_at(path: &Path, source: std::io::Error) -> Error {
        Error::Io {
            path: Some(path.to_path_buf()),
            source,
        }
    }

    /// An [`Error::Parse`] with no position information.
    pub fn parse(msg: impl Into<String>) -> Error {
        Error::Parse {
            path: None,
            line: None,
            msg: msg.into(),
        }
    }

    /// An [`Error::Parse`] positioned at a 1-based line of `path`.
    pub fn parse_at(path: &Path, line: usize, msg: impl Into<String>) -> Error {
        Error::Parse {
            path: Some(path.to_path_buf()),
            line: Some(line),
            msg: msg.into(),
        }
    }

    /// An [`Error::Usage`].
    pub fn usage(msg: impl Into<String>) -> Error {
        Error::Usage(msg.into())
    }

    /// An [`Error::Input`].
    pub fn input(msg: impl Into<String>) -> Error {
        Error::Input(msg.into())
    }

    /// True for [`Error::Usage`] — the caller got the invocation wrong, as
    /// opposed to the work failing.
    pub fn is_usage(&self) -> bool {
        matches!(self, Error::Usage(_))
    }

    /// The stable machine-readable class used by the server wire protocol:
    /// `io`, `parse`, `usage`, `input`, `cancelled`, or `deadline`.
    pub fn code(&self) -> &'static str {
        match self {
            Error::Io { .. } => "io",
            Error::Parse { .. } => "parse",
            Error::Usage(_) => "usage",
            Error::Input(_) => "input",
            Error::Cancelled => "cancelled",
            Error::DeadlineExceeded => "deadline",
        }
    }

    /// Attaches `path` to an [`Error::Io`] or [`Error::Parse`] that does
    /// not already carry one; other variants pass through unchanged.
    pub fn with_path(self, path: &Path) -> Error {
        match self {
            Error::Io { path: None, source } => Error::io_at(path, source),
            Error::Parse {
                path: None,
                line,
                msg,
            } => Error::Parse {
                path: Some(path.to_path_buf()),
                line,
                msg,
            },
            other => other,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io { path, source } => match path {
                Some(p) => write!(f, "{}: {source}", p.display()),
                None => write!(f, "{source}"),
            },
            Error::Parse { path, line, msg } => match (path, line) {
                (Some(p), Some(l)) => write!(f, "{}:{l}: {msg}", p.display()),
                (Some(p), None) => write!(f, "{}: {msg}", p.display()),
                (None, Some(l)) => write!(f, "line {l}: {msg}"),
                (None, None) => f.write_str(msg),
            },
            Error::Usage(msg) | Error::Input(msg) => f.write_str(msg),
            Error::Cancelled => f.write_str("query cancelled"),
            Error::DeadlineExceeded => f.write_str("query deadline exceeded"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(source: std::io::Error) -> Error {
        Error::Io { path: None, source }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io;

    #[test]
    fn display_includes_position() {
        let e = Error::parse_at(Path::new("g.adj"), 7, "vertex id out of range");
        assert_eq!(e.to_string(), "g.adj:7: vertex id out of range");
        let e = Error::parse("truncated header");
        assert_eq!(e.to_string(), "truncated header");
        let e = Error::io_at(
            Path::new("missing.el"),
            io::Error::new(io::ErrorKind::NotFound, "no such file"),
        );
        assert!(e.to_string().starts_with("missing.el: "));
    }

    #[test]
    fn codes_are_stable() {
        assert_eq!(Error::from(io::Error::other("x")).code(), "io");
        assert_eq!(Error::parse("x").code(), "parse");
        assert_eq!(Error::usage("x").code(), "usage");
        assert_eq!(Error::input("x").code(), "input");
        assert_eq!(Error::Cancelled.code(), "cancelled");
        assert_eq!(Error::DeadlineExceeded.code(), "deadline");
        assert!(Error::usage("x").is_usage());
        assert!(!Error::input("x").is_usage());
    }

    #[test]
    fn with_path_fills_only_missing_positions() {
        let e = Error::parse("bad record").with_path(Path::new("a.el"));
        assert_eq!(e.to_string(), "a.el: bad record");
        let e = Error::parse_at(Path::new("a.el"), 3, "bad").with_path(Path::new("b.el"));
        assert_eq!(e.to_string(), "a.el:3: bad");
        let e = Error::usage("delta must be >= 1").with_path(Path::new("a.el"));
        assert_eq!(e.to_string(), "delta must be >= 1");
    }

    #[test]
    fn io_source_is_preserved() {
        let e = Error::io_at(Path::new("x"), io::Error::other("disk on fire"));
        let src = std::error::Error::source(&e).expect("io errors carry a source");
        assert_eq!(src.to_string(), "disk on fire");
    }
}
