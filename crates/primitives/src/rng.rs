//! Deterministic, splittable randomness for parallel workloads.
//!
//! Parallel generators and microbenchmarks need per-index randomness that is
//! independent of scheduling; `hash64(seed, i)` gives every index its own
//! reproducible value (the SplitMix64 finaliser, which passes BigCrush), and
//! [`SplitMix64`] is a small sequential stream for test drivers.

/// Stateless 64-bit mix of `(seed, x)` — the SplitMix64 finaliser applied to
/// `seed ^ golden_ratio * x`.
#[inline]
pub fn hash64(seed: u64, x: u64) -> u64 {
    let mut z = seed ^ x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Stateless 32-bit hash of `(seed, x)`.
#[inline]
pub fn hash32(seed: u64, x: u64) -> u32 {
    (hash64(seed, x) >> 32) as u32
}

/// Unbiased-enough mapping of a hash into `[0, bound)` via the widening
/// multiply trick (Lemire). `bound` must be nonzero.
#[inline]
pub fn hash_range(seed: u64, x: u64, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((hash64(seed, x) as u128 * bound as u128) >> 64) as u64
}

/// A tiny sequential PRNG (SplitMix64) for test and workload drivers.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a stream seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 32-bit value.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    #[inline]
    pub fn next_range(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `u32` in `[lo, hi)`; requires `lo < hi`.
    #[inline]
    pub fn next_u32_in(&mut self, lo: u32, hi: u32) -> u32 {
        debug_assert!(lo < hi);
        lo + self.next_range((hi - lo) as u64) as u32
    }

    /// Derives an independent child stream (for forking into parallel
    /// tasks deterministically).
    pub fn split(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash64_is_deterministic_and_spreads() {
        assert_eq!(hash64(1, 2), hash64(1, 2));
        assert_ne!(hash64(1, 2), hash64(1, 3));
        assert_ne!(hash64(1, 2), hash64(2, 2));
        // Crude avalanche check: flipping one input bit changes many output
        // bits on average.
        let a = hash64(42, 1000);
        let b = hash64(42, 1001);
        assert!((a ^ b).count_ones() > 10);
    }

    #[test]
    fn hash_range_in_bounds() {
        for i in 0..10_000u64 {
            let v = hash_range(7, i, 997);
            assert!(v < 997);
        }
    }

    #[test]
    fn splitmix_range_uniform_ish() {
        let mut rng = SplitMix64::new(123);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.next_range(10) as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "skewed: {counts:?}");
        }
    }

    #[test]
    fn next_u32_in_bounds() {
        let mut rng = SplitMix64::new(5);
        for _ in 0..1000 {
            let v = rng.next_u32_in(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn split_streams_differ() {
        let mut rng = SplitMix64::new(9);
        let mut a = rng.split();
        let mut b = rng.split();
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
