//! Parallel primitives for the Julienne reproduction.
//!
//! This crate provides the PBBS/Ligra-style sequence primitives that the
//! paper's bucketing structure and applications are built from:
//!
//! * [`scan`] — exclusive/inclusive prefix sums over arbitrary monoids,
//! * [`reduce`] — parallel reductions,
//! * [`filter`] — parallel filter / pack,
//! * [`sort`] — a parallel LSD radix sort for 32-bit keys,
//! * [`semisort`] — key-grouping (the work-efficient semisort of Section 2),
//! * [`histogram`] — the blocked-histogram kernel of Section 3.3,
//! * [`atomics`] — `CAS` and `writeMin`/`writeMax` (Section 2),
//! * [`bitset`] — plain and atomic bitsets for dense vertex subsets,
//! * [`rng`] — deterministic splittable randomness for parallel workloads,
//! * [`unsafe_write`] — a scoped disjoint-write cell used by the scatter
//!   phases of the radix sort and bucket structure,
//! * [`telemetry`] — engine-wide counters, spans, and per-round trace
//!   records (compiled to no-ops when the `telemetry` feature is off),
//! * [`error`] — the workspace-wide typed [`error::Error`] enum shared by
//!   loaders, the engine, the CLI, and the query server.
//!
//! All parallel routines are written against [rayon] and respect its global
//! (or per-call [`rayon::ThreadPool`]) configuration, which is how the
//! benchmark harness performs thread-count sweeps.

pub mod atomics;
pub mod bitset;
pub mod error;
pub mod filter;
pub mod histogram;
pub mod reduce;
pub mod rng;
pub mod scan;
pub mod semisort;
pub mod sort;
pub mod telemetry;
pub mod unsafe_write;

/// Default granularity: parallel loops fall back to sequential execution
/// below this many elements, matching the fork-join overheads measured in
/// PBBS-style codes.
pub const SEQ_THRESHOLD: usize = 2048;

/// Cap on [`num_chunks`]: bounds per-call combine overhead while leaving
/// enough chunks to saturate any pool this workspace targets.
pub const MAX_CHUNKS: usize = 64;

/// Number of chunks to split `n` elements into for two-pass (chunk-local +
/// combine) parallel algorithms: one chunk per [`SEQ_THRESHOLD`] elements,
/// capped at [`MAX_CHUNKS`].
///
/// Deliberately a pure function of `n` — **never** of the thread count —
/// so chunk boundaries, and with them every chunk-local partial result
/// (prefix sums, packed offsets, histogram buckets, …), are identical no
/// matter how many worker threads execute the chunks. This is what makes
/// whole-algorithm outputs bit-identical across `JULIENNE_NUM_THREADS`
/// settings.
pub fn num_chunks(n: usize) -> usize {
    if n <= SEQ_THRESHOLD {
        1
    } else {
        n.div_ceil(SEQ_THRESHOLD).min(MAX_CHUNKS)
    }
}

/// Splits `n` into `chunks` nearly equal ranges; returns the bounds of chunk
/// `i` as `(start, end)`.
pub fn chunk_bounds(n: usize, chunks: usize, i: usize) -> (usize, usize) {
    let per = n.div_ceil(chunks);
    let start = (i * per).min(n);
    let end = ((i + 1) * per).min(n);
    (start, end)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_bounds_cover_range() {
        for n in [0usize, 1, 5, 100, 2048, 4097] {
            for chunks in [1usize, 2, 3, 7, 16] {
                let mut covered = 0;
                let mut prev_end = 0;
                for i in 0..chunks {
                    let (s, e) = chunk_bounds(n, chunks, i);
                    assert!(s <= e);
                    assert_eq!(s, prev_end.min(s).max(s)); // monotone
                    assert!(s >= prev_end);
                    covered += e - s;
                    prev_end = e;
                }
                assert_eq!(covered, n, "n={n} chunks={chunks}");
                assert_eq!(prev_end, n);
            }
        }
    }

    #[test]
    fn num_chunks_small_is_one() {
        assert_eq!(num_chunks(0), 1);
        assert_eq!(num_chunks(SEQ_THRESHOLD), 1);
        assert!(num_chunks(SEQ_THRESHOLD + 1) >= 1);
    }

    #[test]
    fn num_chunks_is_thread_count_independent() {
        let sizes = [0usize, 100, 2049, 100_000, 10_000_000];
        let at_default: Vec<usize> = sizes.iter().map(|&n| num_chunks(n)).collect();
        for threads in [1usize, 2, 4, 8] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let inside: Vec<usize> =
                pool.install(|| sizes.iter().map(|&n| num_chunks(n)).collect());
            assert_eq!(inside, at_default, "threads = {threads}");
        }
    }
}
