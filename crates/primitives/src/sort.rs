//! A parallel LSD radix sort for 32-bit keys.
//!
//! This is the comparison-free workhorse behind [`crate::semisort`] and the
//! sparse histogram. Each pass is a stable parallel counting sort on an
//! 8-bit digit: per-chunk 256-entry histograms, a column-major exclusive
//! scan (digit-major, chunk-minor) to assign every (chunk, digit) pair a
//! private destination range, then a disjoint parallel scatter. O(n) work
//! per pass and O(log n) depth, with ⌈bits/8⌉ passes.

use crate::scan::prefix_sums;
use crate::unsafe_write::DisjointWriter;
use crate::{chunk_bounds, num_chunks};
use rayon::prelude::*;

const RADIX_BITS: u32 = 8;
const RADIX: usize = 1 << RADIX_BITS;

/// Sorts `items` stably and in place by `key(&item)`, where all keys are
/// `<= max_key`. Runs only as many digit passes as `max_key` needs.
pub fn radix_sort_by_key<T, F>(items: &mut Vec<T>, max_key: u32, key: F)
where
    T: Copy + Send + Sync,
    F: Fn(&T) -> u32 + Send + Sync,
{
    let n = items.len();
    if n <= 1 {
        return;
    }
    let bits = 32 - max_key.leading_zeros();
    let passes = bits.div_ceil(RADIX_BITS).max(1);

    let mut src = std::mem::take(items);
    let mut dst: Vec<T> = Vec::with_capacity(n);
    // SAFETY: every slot of `dst` is written by the first scatter pass
    // before any read; `T: Copy` so no drops of uninitialised data occur.
    #[allow(clippy::uninit_vec)]
    unsafe {
        dst.set_len(n)
    };

    for pass in 0..passes {
        let shift = pass * RADIX_BITS;
        counting_sort_pass(&src, &mut dst, |t| {
            ((key(t) >> shift) as usize) & (RADIX - 1)
        });
        std::mem::swap(&mut src, &mut dst);
    }
    *items = src;
}

/// Sorts a `Vec<u32>` of keys in place.
pub fn radix_sort_u32(keys: &mut Vec<u32>) {
    let max = crate::reduce::max_u32(keys);
    radix_sort_by_key(keys, max, |&k| k);
}

/// One stable counting-sort pass from `src` into `dst` by `digit(&item)`,
/// which must return values `< RADIX`.
fn counting_sort_pass<T, D>(src: &[T], dst: &mut [T], digit: D)
where
    T: Copy + Send + Sync,
    D: Fn(&T) -> usize + Send + Sync,
{
    let n = src.len();
    let chunks = num_chunks(n);

    // Per-chunk digit histograms.
    let histos: Vec<[usize; RADIX]> = (0..chunks)
        .into_par_iter()
        .map(|c| {
            let (s, e) = chunk_bounds(n, chunks, c);
            let mut h = [0usize; RADIX];
            for t in &src[s..e] {
                h[digit(t)] += 1;
            }
            h
        })
        .collect();

    // Column-major (digit-major, chunk-minor) exclusive scan: stability
    // requires all of digit d's chunk-0 elements to precede its chunk-1
    // elements, and all of digit d to precede digit d+1.
    let mut offsets = vec![0usize; RADIX * chunks];
    {
        let mut flat: Vec<usize> = Vec::with_capacity(RADIX * chunks);
        for d in 0..RADIX {
            for h in &histos {
                flat.push(h[d]);
            }
        }
        let total = prefix_sums(&mut flat);
        debug_assert_eq!(total, n);
        for d in 0..RADIX {
            for c in 0..chunks {
                offsets[c * RADIX + d] = flat[d * chunks + c];
            }
        }
    }

    // Scatter: each (chunk, digit) pair owns a private destination range.
    let writer = DisjointWriter::new(dst);
    offsets
        .par_chunks(RADIX)
        .enumerate()
        .for_each(|(c, chunk_offsets)| {
            let (s, e) = chunk_bounds(n, chunks, c);
            let mut cursor = [0usize; RADIX];
            for t in &src[s..e] {
                let d = digit(t);
                let pos = chunk_offsets[d] + cursor[d];
                cursor[d] += 1;
                // SAFETY: destination positions are unique across all
                // (chunk, digit) pairs by the exclusive scan.
                unsafe { writer.write(pos, *t) };
            }
        });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    #[test]
    fn sorts_random_u32() {
        let mut rng = SplitMix64::new(42);
        for n in [0usize, 1, 2, 100, 4096, 100_000] {
            let mut xs: Vec<u32> = (0..n).map(|_| rng.next_u32()).collect();
            let mut want = xs.clone();
            want.sort_unstable();
            radix_sort_u32(&mut xs);
            assert_eq!(xs, want, "n={n}");
        }
    }

    #[test]
    fn sorts_small_key_range_with_few_passes() {
        let mut rng = SplitMix64::new(7);
        let mut xs: Vec<u32> = (0..50_000).map(|_| rng.next_u32() % 200).collect();
        let mut want = xs.clone();
        want.sort_unstable();
        radix_sort_by_key(&mut xs, 199, |&k| k);
        assert_eq!(xs, want);
    }

    #[test]
    fn stable_on_pairs() {
        // Pairs (key, original_index); after a stable sort, equal keys keep
        // index order.
        let mut rng = SplitMix64::new(99);
        let n = 30_000usize;
        let mut xs: Vec<(u32, u32)> = (0..n).map(|i| (rng.next_u32() % 64, i as u32)).collect();
        radix_sort_by_key(&mut xs, 63, |p| p.0);
        for w in xs.windows(2) {
            assert!(w[0].0 <= w[1].0);
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1, "stability violated");
            }
        }
    }

    #[test]
    fn sorts_full_range_keys() {
        let mut xs = vec![u32::MAX, 0, u32::MAX - 1, 1, 1 << 31];
        radix_sort_u32(&mut xs);
        assert_eq!(xs, vec![0, 1, 1 << 31, u32::MAX - 1, u32::MAX]);
    }

    #[test]
    fn already_sorted_and_reverse() {
        let mut a: Vec<u32> = (0..10_000).collect();
        let want = a.clone();
        radix_sort_u32(&mut a);
        assert_eq!(a, want);
        let mut b: Vec<u32> = (0..10_000).rev().collect();
        radix_sort_u32(&mut b);
        assert_eq!(b, want);
    }
}
