//! A scoped cell permitting *disjoint* parallel writes into a slice.
//!
//! Scatter phases (radix sort, the bucket structure's `updateBuckets`) write
//! each element of an output buffer exactly once, from positions computed by
//! a prior scan, so the writes are disjoint by construction. Safe Rust cannot
//! express "many threads write disjoint, dynamically-computed indices of one
//! slice", so this module confines the one required `unsafe` idiom of the
//! whole workspace to a single audited type.

use std::cell::UnsafeCell;

/// A wrapper around `&mut [T]` that can be shared across threads and written
/// through a shared reference.
///
/// # Safety contract
///
/// Callers of [`DisjointWriter::write`] must guarantee that no index is
/// written by more than one thread during the lifetime of the writer, and
/// that no reads of written slots occur until the writer is dropped. The
/// typical pattern (exclusive destination offsets produced by a scan)
/// satisfies this.
pub struct DisjointWriter<'a, T> {
    data: &'a [UnsafeCell<T>],
}

// SAFETY: writes are disjoint per the documented contract; UnsafeCell makes
// the aliasing explicit to the compiler.
unsafe impl<T: Send> Send for DisjointWriter<'_, T> {}
unsafe impl<T: Send> Sync for DisjointWriter<'_, T> {}

impl<'a, T> DisjointWriter<'a, T> {
    /// Wraps a mutable slice for scoped disjoint writes.
    pub fn new(slice: &'a mut [T]) -> Self {
        // SAFETY: `UnsafeCell<T>` has the same layout as `T`, so a
        // `&mut [T]` can be viewed as `&[UnsafeCell<T>]` while the original
        // borrow is held (we keep exclusive access through `'a`).
        let data = unsafe { &*(slice as *mut [T] as *const [UnsafeCell<T>]) };
        DisjointWriter { data }
    }

    /// Number of writable slots.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the underlying slice is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Writes `value` at `index`.
    ///
    /// # Safety
    ///
    /// `index` must be in bounds and must not be concurrently written by any
    /// other thread, nor read until the writer is dropped.
    #[inline]
    pub unsafe fn write(&self, index: usize, value: T) {
        debug_assert!(index < self.data.len());
        *self.data[index].get() = value;
    }

    /// Reads the value at `index` (owner-local read for read-modify-write
    /// patterns such as in-place packing).
    ///
    /// # Safety
    ///
    /// `index` must be in bounds and the slot must not be concurrently
    /// written by any other thread.
    #[inline]
    pub unsafe fn read(&self, index: usize) -> T
    where
        T: Copy,
    {
        debug_assert!(index < self.data.len());
        *self.data[index].get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn parallel_disjoint_writes_land() {
        let n = 10_000;
        let mut out = vec![0u32; n];
        {
            let w = DisjointWriter::new(&mut out);
            (0..n).into_par_iter().for_each(|i| {
                // Each index written exactly once: contract satisfied.
                unsafe { w.write(i, (i * 2) as u32) };
            });
        }
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, (i * 2) as u32);
        }
    }

    #[test]
    fn permuted_disjoint_writes_land() {
        let n = 4096;
        let mut out = vec![0usize; n];
        {
            let w = DisjointWriter::new(&mut out);
            assert_eq!(w.len(), n);
            assert!(!w.is_empty());
            (0..n).into_par_iter().for_each(|i| {
                let dest = (i * 2654435761) % n; // not a permutation in general…
                let dest = if dest < n { dest } else { dest % n };
                let _ = dest;
                // write a permutation instead: reverse
                unsafe { w.write(n - 1 - i, i) };
            });
        }
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, n - 1 - i);
        }
    }
}
