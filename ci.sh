#!/usr/bin/env bash
# Full CI gate: build, test, format, and lint the workspace in both feature
# shapes (default = telemetry on; --no-default-features = telemetry compiled
# out to a zero-sized no-op). Run locally before pushing.
set -euo pipefail
cd "$(dirname "$0")"

run() {
    echo "==> $*"
    "$@"
}

# --- default features (telemetry on) ---------------------------------------
run cargo build --release --workspace
run cargo test -q --workspace
run cargo fmt --all -- --check
run cargo clippy --workspace --all-targets -- -D warnings
run env RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

# --- telemetry compiled out ------------------------------------------------
run cargo build --release --workspace --no-default-features
run cargo test -q --workspace --no-default-features
run cargo clippy --workspace --all-targets --no-default-features -- -D warnings

# --- thread-count matrix ----------------------------------------------------
# The runtime guarantees outputs are identical at every thread count; run the
# whole suite pinned to 1 worker and to 4 workers to hold it to that.
run env JULIENNE_NUM_THREADS=1 cargo test -q --workspace
run env JULIENNE_NUM_THREADS=4 cargo test -q --workspace

# --- schedule chaos ----------------------------------------------------------
# The chaos suite re-runs every algorithm under a seeded adversarial
# scheduler (8 seeds x {2,4,8} threads) and requires bit-identical outputs;
# then the lock-free kernel tests run with chaos forced on via the
# environment, so the perturbation layer itself is exercised end to end.
run env JULIENNE_NUM_THREADS=4 cargo test -q --test chaos_determinism
run env JULIENNE_CHAOS_SEED=1 JULIENNE_NUM_THREADS=4 cargo test -q -p julienne bucket
run env JULIENNE_CHAOS_SEED=1 JULIENNE_NUM_THREADS=4 cargo test -q -p rayon

# --- concurrency stress ------------------------------------------------------
# Re-run the lock-free kernels (atomics, bucket structure, worker pool) many
# times to shake out schedule-dependent bugs that a single pass can miss.
STRESS_ITERS="${STRESS_ITERS:-10}"
echo "==> stress: ${STRESS_ITERS}x atomics + bucket + pool tests"
for _ in $(seq 1 "$STRESS_ITERS"); do
    cargo test -q -p julienne-primitives atomics >/dev/null
    cargo test -q -p julienne bucket >/dev/null
    cargo test -q -p rayon >/dev/null
done

echo "ci.sh: all checks passed"
