#!/usr/bin/env bash
# Full CI gate: build, test, format, and lint the workspace in both feature
# shapes (default = telemetry on; --no-default-features = telemetry compiled
# out to a zero-sized no-op). Run locally before pushing.
set -euo pipefail
cd "$(dirname "$0")"

run() {
    echo "==> $*"
    "$@"
}

# --- default features (telemetry on) ---------------------------------------
run cargo build --release --workspace
run cargo test -q --workspace
run cargo fmt --all -- --check
run cargo clippy --workspace --all-targets -- -D warnings

# --- telemetry compiled out ------------------------------------------------
run cargo build --release --workspace --no-default-features
run cargo test -q --workspace --no-default-features
run cargo clippy --workspace --all-targets --no-default-features -- -D warnings

echo "ci.sh: all checks passed"
