#!/usr/bin/env bash
# Full CI gate: build, test, format, and lint the workspace in both feature
# shapes (default = telemetry on; --no-default-features = telemetry compiled
# out to a zero-sized no-op). Run locally before pushing.
set -euo pipefail
cd "$(dirname "$0")"

run() {
    echo "==> $*"
    "$@"
}

# --- default features (telemetry on) ---------------------------------------
run cargo build --release --workspace
run cargo test -q --workspace
run cargo fmt --all -- --check
run cargo clippy --workspace --all-targets -- -D warnings
run env RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

# --- serve smoke test -------------------------------------------------------
# End-to-end over a real socket: start `julienne serve`, fire concurrent
# mixed queries at it (k-core, Δ-stepping, wBFS, set cover), exercise the
# deterministic cancel (pre-cancel) and deadline (timeout_ms=0) paths, then
# drain it cleanly with a wire shutdown.
echo "==> serve smoke test"
JULIENNE=target/release/julienne
SMOKE=$(mktemp -d)
trap 'rm -rf "$SMOKE"' EXIT
"$JULIENNE" gen kind=rmat scale=10 weights=log out="$SMOKE/g.bin" >/dev/null
"$JULIENNE" serve in="$SMOKE/g.bin" addr=127.0.0.1:0 >"$SMOKE/serve.log" &
SERVE_PID=$!
ADDR=""
for _ in $(seq 1 100); do
    ADDR=$(sed -n 's/^listening on \([0-9.:]*\) .*/\1/p' "$SMOKE/serve.log")
    [ -n "$ADDR" ] && break
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "serve smoke: no listening line"; cat "$SMOKE/serve.log"; exit 1; }
# Concurrent mixed queries against the one loaded graph.
"$JULIENNE" query addr="$ADDR" algo=kcore top=3 >"$SMOKE/q1.out" &
Q1=$!
"$JULIENNE" query addr="$ADDR" algo=sssp src=1 delta=4096 >"$SMOKE/q2.out" &
Q2=$!
"$JULIENNE" query addr="$ADDR" algo=sssp param.algo=wbfs src=2 stats=true >"$SMOKE/q3.out" &
Q3=$!
"$JULIENNE" query addr="$ADDR" algo=setcover sets=64 elements=2048 >"$SMOKE/q4.out" &
Q4=$!
wait "$Q1" "$Q2" "$Q3" "$Q4"
grep -q "k_max=" "$SMOKE/q1.out"
grep -q "reached=" "$SMOKE/q2.out"
grep -q "reached=" "$SMOKE/q3.out"
grep -q "cover" "$SMOKE/q4.out"
# Deterministic cancel: pre-cancel the id, then the query reusing it dies.
"$JULIENNE" query addr="$ADDR" cancel=doomed >"$SMOKE/cancel.ack"
grep -q doomed "$SMOKE/cancel.ack"
if "$JULIENNE" query addr="$ADDR" algo=kcore id=doomed 2>"$SMOKE/cancel.err"; then
    echo "serve smoke: pre-cancelled query unexpectedly succeeded"; exit 1
fi
grep -q cancelled "$SMOKE/cancel.err"
# Deterministic deadline: timeout_ms=0 is already expired.
if "$JULIENNE" query addr="$ADDR" algo=kcore timeout_ms=0 2>"$SMOKE/deadline.err"; then
    echo "serve smoke: expired-deadline query unexpectedly succeeded"; exit 1
fi
grep -q deadline "$SMOKE/deadline.err"
# The session survived all of the above and still answers.
"$JULIENNE" query addr="$ADDR" algo=kcore >"$SMOKE/after.out"
grep -q "k_max=" "$SMOKE/after.out"
# Clean drain: the wire shutdown makes the server process exit 0.
"$JULIENNE" query addr="$ADDR" shutdown=true >"$SMOKE/bye.out"
grep -q shutdown "$SMOKE/bye.out"
wait "$SERVE_PID"
grep -q "server stopped" "$SMOKE/serve.log"
echo "serve smoke test: ok"

# --- batched serve smoke test ------------------------------------------------
# The scheduler pipeline over a raw socket (the CLI client hides the wire
# flags): a homogeneous pipelined burst must coalesce (`"batched": true` on
# every member) with payloads byte-identical to the solo-served answer
# captured above, and a repeat on a fresh connection must answer from the
# result cache (`"cached": true`, same bytes).
echo "==> batched serve smoke test"
"$JULIENNE" serve in="$SMOKE/g.bin" addr=127.0.0.1:0 batch_window_ms=200 \
    cache_bytes=1048576 scheduler=priority >"$SMOKE/bserve.log" &
BSERVE_PID=$!
BADDR=""
for _ in $(seq 1 100); do
    BADDR=$(sed -n 's/^listening on \([0-9.:]*\) .*/\1/p' "$SMOKE/bserve.log")
    [ -n "$BADDR" ] && break
    sleep 0.1
done
[ -n "$BADDR" ] || { echo "batched smoke: no listening line"; cat "$SMOKE/bserve.log"; exit 1; }
python3 - "$BADDR" "$SMOKE/q2.out" <<'PY'
import json, socket, sys

host, port = sys.argv[1].rsplit(":", 1)
expect = open(sys.argv[2], "r").read()  # solo-served sssp src=1 delta=4096


def connect():
    s = socket.create_connection((host, int(port)), timeout=60)
    return s, s.makefile("r")


# Homogeneous burst: four Δ-stepping queries (three distinct sources plus
# one duplicate) pipelined on one connection, all inside the batch window.
srcs = ["1", "2", "3", "1"]
sock, lines = connect()
for i, src in enumerate(srcs):
    req = {"id": "b%d" % i, "algo": "sssp", "params": {"src": src, "delta": "4096"}}
    sock.sendall((json.dumps(req) + "\n").encode())
outputs = {}
for _ in srcs:
    resp = json.loads(lines.readline())
    assert resp.get("ok") is True, resp
    assert resp.get("batched") is True, "burst member missed the batch: %r" % resp
    outputs[resp["id"]] = resp["output"]
assert outputs["b0"] == outputs["b3"], "duplicate sources must share one answer"
assert outputs["b0"] == expect, "batched payload diverged from solo serving:\n%r\nvs\n%r" % (
    outputs["b0"],
    expect,
)
sock.close()

# Cache round-trip: the burst populated the cache, so a fresh connection
# repeating the query is answered from it with identical bytes.
sock, lines = connect()
req = {"id": "c0", "algo": "sssp", "params": {"src": "1", "delta": "4096"}}
sock.sendall((json.dumps(req) + "\n").encode())
resp = json.loads(lines.readline())
assert resp.get("ok") is True, resp
assert resp.get("cached") is True, "repeat query missed the cache: %r" % resp
assert resp["output"] == expect, "cached payload diverged from solo serving"
sock.close()
print("batched burst fused and cache hit verified, payloads byte-identical")
PY
"$JULIENNE" query addr="$BADDR" shutdown=true >/dev/null
wait "$BSERVE_PID"
grep -q "server stopped" "$SMOKE/bserve.log"
echo "batched serve smoke test: ok"

# --- convert -> mmap -> serve smoke test -------------------------------------
# The .jgr container end to end: convert (with embedded compressed payload
# and full checksum verification), serve it zero-copy via backend=mapped,
# and require its answers to be byte-identical to the CSR-served run above.
echo "==> container smoke test"
"$JULIENNE" convert in="$SMOKE/g.bin" out="$SMOKE/g.jgr" weighted=true \
    compressed_payload=true verify=true >/dev/null
"$JULIENNE" serve in="$SMOKE/g.jgr" backend=mapped addr=127.0.0.1:0 \
    >"$SMOKE/mserve.log" &
MSERVE_PID=$!
MADDR=""
for _ in $(seq 1 100); do
    MADDR=$(sed -n 's/^listening on \([0-9.:]*\) .*/\1/p' "$SMOKE/mserve.log")
    [ -n "$MADDR" ] && break
    sleep 0.1
done
[ -n "$MADDR" ] || { echo "container smoke: no listening line"; cat "$SMOKE/mserve.log"; exit 1; }
grep -q "backend=mapped" "$SMOKE/mserve.log"
# Same queries the .bin-backed server answered above; the mmap'd container
# must produce byte-identical output.
"$JULIENNE" query addr="$MADDR" algo=kcore top=3 >"$SMOKE/mq1.out"
"$JULIENNE" query addr="$MADDR" algo=sssp src=1 delta=4096 >"$SMOKE/mq2.out"
cmp "$SMOKE/mq1.out" "$SMOKE/q1.out"
cmp "$SMOKE/mq2.out" "$SMOKE/q2.out"
"$JULIENNE" query addr="$MADDR" shutdown=true >/dev/null
wait "$MSERVE_PID"
# Round-trip: exporting the container to text matches a direct text export.
"$JULIENNE" convert in="$SMOKE/g.bin" out="$SMOKE/direct.el" weighted=true >/dev/null
"$JULIENNE" convert in="$SMOKE/g.jgr" out="$SMOKE/via-jgr.el" weighted=true >/dev/null
cmp "$SMOKE/direct.el" "$SMOKE/via-jgr.el"
echo "container smoke test: ok"

# --- decode microbench smoke -------------------------------------------------
# The table-driven decoder, the bulk window scan, and the chunked layout
# must all produce identical neighbor checksums (the bench asserts this and
# aborts otherwise); smoke mode skips artifacts and keeps timings advisory.
run target/release/decode 9 smoke

# --- corrupt-payload regression ----------------------------------------------
# Truncated and overlong codewords, bad chunk headers, and malformed raw
# parts must surface typed errors (or clean panics on the traversal path),
# never out-of-bounds reads. These filters pin the fail-closed tests.
run cargo test -q -p julienne-graph corrupt
run cargo test -q -p julienne-graph truncated
run cargo test -q --test proptest_decode

# --- telemetry compiled out ------------------------------------------------
run cargo build --release --workspace --no-default-features
run cargo test -q --workspace --no-default-features
run cargo clippy --workspace --all-targets --no-default-features -- -D warnings

# --- thread-count matrix ----------------------------------------------------
# The runtime guarantees outputs are identical at every thread count; run the
# whole suite pinned to 1 worker and to 4 workers to hold it to that.
run env JULIENNE_NUM_THREADS=1 cargo test -q --workspace
run env JULIENNE_NUM_THREADS=4 cargo test -q --workspace

# --- schedule chaos ----------------------------------------------------------
# The chaos suite re-runs every algorithm under a seeded adversarial
# scheduler (8 seeds x {2,4,8} threads) and requires bit-identical outputs;
# then the lock-free kernel tests run with chaos forced on via the
# environment, so the perturbation layer itself is exercised end to end.
run env JULIENNE_NUM_THREADS=4 cargo test -q --test chaos_determinism
run env JULIENNE_CHAOS_SEED=1 JULIENNE_NUM_THREADS=4 cargo test -q -p julienne bucket
run env JULIENNE_CHAOS_SEED=1 JULIENNE_NUM_THREADS=4 cargo test -q -p rayon
# The chunked compressed backend's split traversal paths (per-chunk sparse
# tasks, dense heavy-vertex scan) under the adversarial scheduler: results
# must stay bit-identical to CSR.
run env JULIENNE_CHAOS_SEED=1 JULIENNE_NUM_THREADS=4 cargo test -q --test integration_backends tiny_chunk

# --- concurrency stress ------------------------------------------------------
# Re-run the lock-free kernels (atomics, bucket structure, worker pool) many
# times to shake out schedule-dependent bugs that a single pass can miss.
STRESS_ITERS="${STRESS_ITERS:-10}"
echo "==> stress: ${STRESS_ITERS}x atomics + bucket + pool tests"
for _ in $(seq 1 "$STRESS_ITERS"); do
    cargo test -q -p julienne-primitives atomics >/dev/null
    cargo test -q -p julienne bucket >/dev/null
    cargo test -q -p rayon >/dev/null
done

echo "ci.sh: all checks passed"
