//! # julienne-repro
//!
//! A from-scratch Rust reproduction of *"Julienne: A Framework for Parallel
//! Graph Algorithms using Work-efficient Bucketing"* (Dhulipala, Blelloch,
//! Shun — SPAA 2017).
//!
//! This façade crate re-exports the whole stack; the runnable examples under
//! `examples/` and the integration tests under `tests/` are built against
//! it. See README.md for a tour and DESIGN.md for the system inventory.
//!
//! ```
//! use julienne_repro::prelude::*;
//! use julienne_repro::algorithms::kcore::{coreness, KcoreParams};
//!
//! // Coreness of a 4-cycle: every vertex is in the 2-core.
//! let g = julienne_repro::graph::builder::from_pairs_symmetric(
//!     4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
//! let result = coreness(&g, &KcoreParams::default(), &QueryCtx::default()).unwrap();
//! assert_eq!(result.coreness, vec![2, 2, 2, 2]);
//! ```

pub use julienne as core;
pub use julienne_algorithms as algorithms;
pub use julienne_graph as graph;
pub use julienne_ligra as ligra;
pub use julienne_primitives as primitives;

pub use julienne::prelude;
