# Re-plots Figure 1 from the CSV the fig1 binary drops here:
#   cargo run -p julienne-bench --release --bin fig1 -- 20
#   gnuplot results/plot_fig1.gnuplot
# Produces fig1.png: log-log throughput vs identifiers/round, one series
# per initial bucket count, matching the paper's axes.
set terminal pngcairo size 900,600
set output "results/fig1.png"
set datafile separator ","
set logscale xy
set xlabel "average number of identifiers / round"
set ylabel "throughput (identifiers / second)"
set key bottom right
plot for [b in "128 256 512 1024"] \
    "results/fig1.csv" using 4:($1 eq b."-buckets" ? $5 : 1/0) \
    with linespoints title b." buckets"
