//! A non-graph use of the bucket structure — the paper notes the interface
//! "is not specific to storing and retrieving vertices, and may have
//! applications other than graph algorithms" (§3.1).
//!
//! Deadline-driven job scheduler: jobs are identifiers, buckets are time
//! slots (deadline / slot width). Processing a job can spawn follow-up work
//! that re-files dependent jobs into earlier slots (expedite) — exactly the
//! monotone `getBucket`/`updateBuckets` pattern of Δ-stepping.
//!
//! ```sh
//! cargo run --release --example bucket_scheduler
//! ```

use julienne_repro::core::bucket::{BucketDest, BucketsBuilder, Order, NULL_BKT};
use julienne_repro::primitives::rng::SplitMix64;
use std::sync::atomic::{AtomicU32, Ordering};

const SLOT_MINUTES: u32 = 15;

fn main() {
    let num_jobs = 10_000usize;
    let mut rng = SplitMix64::new(0x5EED);

    // Each job has a deadline (minutes from now) and a chain of dependents
    // that get expedited when it completes.
    let deadline: Vec<AtomicU32> = (0..num_jobs)
        .map(|_| AtomicU32::new(rng.next_u32_in(SLOT_MINUTES, 24 * 60)))
        .collect();
    let dependents: Vec<Vec<u32>> = (0..num_jobs)
        .map(|_| {
            (0..rng.next_range(3))
                .map(|_| rng.next_range(num_jobs as u64) as u32)
                .collect()
        })
        .collect();
    let done: Vec<AtomicU32> = (0..num_jobs).map(|_| AtomicU32::new(0)).collect();

    let slot_of = |j: u32| -> u32 {
        if done[j as usize].load(Ordering::SeqCst) == 1 {
            NULL_BKT
        } else {
            deadline[j as usize].load(Ordering::SeqCst) / SLOT_MINUTES
        }
    };
    let mut schedule = BucketsBuilder::new(num_jobs, slot_of, Order::Increasing).build();

    let mut batches = 0u64;
    let mut processed = 0u64;
    let mut expedited = 0u64;
    while let Some((slot, jobs)) = schedule.next_bucket() {
        batches += 1;
        processed += jobs.len() as u64;
        let mut moves: Vec<(u32, BucketDest)> = Vec::new();
        for &j in &jobs {
            done[j as usize].store(1, Ordering::SeqCst);
            // Completing j expedites its dependents by 30 minutes, but
            // never earlier than the slot currently being served.
            for &d in &dependents[j as usize] {
                if done[d as usize].load(Ordering::SeqCst) == 1 {
                    continue;
                }
                let old = deadline[d as usize].load(Ordering::SeqCst);
                let floor = slot * SLOT_MINUTES;
                let new = old.saturating_sub(30).max(floor);
                if new / SLOT_MINUTES != old / SLOT_MINUTES {
                    deadline[d as usize].store(new, Ordering::SeqCst);
                    let dest = schedule.get_bucket(old / SLOT_MINUTES, new / SLOT_MINUTES);
                    if !dest.is_null() {
                        expedited += 1;
                    }
                    moves.push((d, dest));
                }
            }
        }
        schedule.update_buckets(&moves);
    }

    assert_eq!(processed, num_jobs as u64, "every job served exactly once");
    println!("served {processed} jobs in {batches} time-slot batches");
    println!("{expedited} jobs were expedited into earlier slots mid-run");
    println!(
        "bucket structure stats: {:?}",
        // extraction/move counters come straight from the structure
        {
            let s = schedule.stats();
            (
                s.identifiers_extracted,
                s.identifiers_moved,
                s.overflow_redistributions,
            )
        }
    );
}
