//! Community-strength analysis with k-core decomposition — the social
//! network use case the paper's introduction motivates (dense-subgraph
//! mining, influence analysis).
//!
//! Computes coreness on a heavy-tailed graph, prints the core-size
//! distribution, extracts the innermost core, and cross-checks the
//! work-efficient result against the sequential Batagelj–Zaversnik oracle.
//!
//! ```sh
//! cargo run --release --example kcore_communities [scale]
//! ```

use julienne_repro::algorithms::kcore::{self, KcoreParams};
use julienne_repro::core::query::QueryCtx;
use julienne_repro::graph::compress::CompressedGraph;
use julienne_repro::graph::generators::{rmat, RmatParams};

fn main() {
    let scale: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(15);
    let g = rmat(scale, 16, RmatParams::default(), 0x50C1A1, true);
    println!(
        "social graph: n = {}, m = {}",
        g.num_vertices(),
        g.num_edges()
    );

    let result = kcore::coreness(&g, &KcoreParams::default(), &QueryCtx::default()).unwrap();
    let oracle = kcore::coreness_bz_seq(&g);
    assert_eq!(
        result.coreness, oracle.coreness,
        "peeling disagrees with BZ"
    );

    // Core-size distribution: how many vertices sit at each coreness level
    // (log-binned for readability).
    let k_max = result.coreness.iter().copied().max().unwrap();
    println!("k_max = {k_max}, peeling rounds = {}", result.rounds);
    println!("\ncoreness distribution (log-binned):");
    let mut bin_counts: Vec<(u32, u32, usize)> = Vec::new();
    let mut lo = 0u32;
    while lo <= k_max {
        let hi = if lo == 0 { 1 } else { lo * 2 };
        let count = result
            .coreness
            .iter()
            .filter(|&&c| c >= lo && c < hi)
            .count();
        if count > 0 {
            bin_counts.push((lo, hi, count));
        }
        lo = hi;
    }
    for (lo, hi, count) in bin_counts {
        println!("  coreness [{lo:>5}, {hi:>5}): {count:>8} vertices");
    }

    // The innermost community: vertices of the k_max-core.
    let inner = kcore::kcore_vertices(&result.coreness, k_max);
    println!(
        "\ninnermost ({k_max}-core) community: {} vertices, e.g. {:?}",
        inner.len(),
        &inner[..inner.len().min(8)]
    );

    // The same decomposition runs unmodified on the byte-compressed graph
    // (the Ligra+ path the paper uses for the 225B-edge input).
    let cg = CompressedGraph::from_csr(&g);
    let compressed_result =
        kcore::coreness(&cg, &KcoreParams::default(), &QueryCtx::default()).unwrap();
    assert_eq!(compressed_result.coreness, result.coreness);
    println!(
        "\ncompressed run: identical coreness; {} raw MB -> {} compressed MB",
        g.num_edges() * 4 / (1 << 20),
        cg.compressed_bytes() / (1 << 20)
    );
}
