//! A full network-analysis pass over one social graph: centrality,
//! communities, independent sets, coloring, and ranking — the broader
//! Ligra-style application suite running on the same substrate as the
//! paper's four bucketing algorithms.
//!
//! ```sh
//! cargo run --release --example network_analysis [scale]
//! ```

use julienne_repro::algorithms::betweenness::betweenness;
use julienne_repro::algorithms::components::{connected_components, num_components};
use julienne_repro::algorithms::degeneracy::{degeneracy_order, greedy_coloring};
use julienne_repro::algorithms::kcore::{coreness, KcoreParams};
use julienne_repro::algorithms::mis::{maximal_independent_set, verify_mis};
use julienne_repro::algorithms::pagerank::pagerank;
use julienne_repro::core::query::QueryCtx;
use julienne_repro::graph::generators::{rmat, RmatParams};

fn main() {
    let scale: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(12);
    let g = rmat(scale, 10, RmatParams::default(), 0x4E37, true);
    println!("network: n = {}, m = {}", g.num_vertices(), g.num_edges());

    // Connectivity.
    let cc = connected_components(&g);
    println!(
        "components: {} ({} label-propagation rounds)",
        num_components(&cc.label),
        cc.rounds
    );

    // Influence: PageRank vs coreness vs (sampled) betweenness.
    let pr = pagerank(&g, 0.85, 1e-9, 100);
    let core = coreness(&g, &KcoreParams::default(), &QueryCtx::default()).unwrap();
    let sources: Vec<u32> = (0..64.min(g.num_vertices() as u32)).collect();
    let bc = betweenness(&g, &sources);
    let top_by = |scores: &[f64]| {
        let mut idx: Vec<usize> = (0..scores.len()).collect();
        idx.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap());
        idx[0]
    };
    let pr_top = top_by(&pr.rank);
    let bc_top = top_by(&bc);
    println!(
        "top pagerank vertex: v{pr_top} (rank {:.5}, coreness {})",
        pr.rank[pr_top], core.coreness[pr_top]
    );
    println!(
        "top betweenness vertex (64-source sample): v{bc_top} (coreness {})",
        core.coreness[bc_top]
    );

    // Structure: degeneracy, coloring, independent set.
    let degen = degeneracy_order(&g);
    let colors = greedy_coloring(&g);
    let palette = colors.iter().copied().max().unwrap() + 1;
    println!(
        "degeneracy: {} -> proper coloring with {palette} colors (bound {})",
        degen.degeneracy,
        degen.degeneracy + 1
    );
    let mis = maximal_independent_set(&g, 7);
    assert!(verify_mis(&g, &mis.members));
    println!(
        "maximal independent set: {} vertices in {} rounds (verified)",
        mis.members.len(),
        mis.rounds
    );
}
