//! Cohesive-subgroup mining with k-truss — bucketing over **edge**
//! identifiers, the generalisation the paper sketches in §3.1 ("identifiers
//! represent other objects such as edges, triangles, or graph motifs").
//!
//! Counts triangles, runs the bucketed edge peel, prints the truss-level
//! distribution, and verifies the parallel result against the sequential
//! oracle.
//!
//! ```sh
//! cargo run --release --example truss_communities [scale]
//! ```

use julienne_repro::algorithms::ktruss::{ktruss_julienne, ktruss_seq};
use julienne_repro::algorithms::triangles::{triangle_count, EdgeIndex};
use julienne_repro::graph::generators::{rmat, RmatParams};

fn main() {
    let scale: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(12);
    let g = rmat(scale, 12, RmatParams::default(), 0x7455, true);
    let idx = EdgeIndex::new(&g);
    println!(
        "graph: n = {}, undirected edges = {}, triangles = {}",
        g.num_vertices(),
        idx.num_edges(),
        triangle_count(&g)
    );

    let par = ktruss_julienne(&g);
    let seq = ktruss_seq(&g);
    assert_eq!(
        par.trussness, seq.trussness,
        "parallel disagrees with oracle"
    );
    println!(
        "max trussness = {} ({} peeling rounds); verified against sequential peel",
        par.max_truss, par.rounds
    );

    // Truss-level histogram (how many edges survive to each level).
    let mut level_counts = std::collections::BTreeMap::<u32, usize>::new();
    for &t in &par.trussness {
        *level_counts.entry(t).or_default() += 1;
    }
    println!("\nedges per trussness level:");
    for (t, c) in level_counts.iter().rev().take(8) {
        println!("  {t:>4}-truss boundary: {c:>7} edges");
    }

    // The innermost truss: a tightly-knit community where every tie is
    // reinforced by at least max_truss − 2 mutual friends.
    let t = par.max_truss;
    let inner: Vec<(u32, u32)> = idx
        .endpoints
        .iter()
        .zip(&par.trussness)
        .filter(|&(_, &x)| x >= t)
        .map(|(&e, _)| e)
        .collect();
    let mut members: Vec<u32> = inner.iter().flat_map(|&(u, v)| [u, v]).collect();
    members.sort_unstable();
    members.dedup();
    println!(
        "\ninnermost ({t}-truss) community: {} edges over {} vertices",
        inner.len(),
        members.len()
    );
}
