//! Route planning on a road-network-like grid — the high-diameter SSSP
//! scenario where the choice of Δ matters (Section 4.2).
//!
//! Builds a weighted grid, runs Δ-stepping at several Δ values plus wBFS
//! and Bellman–Ford, verifies all against Dijkstra, and reconstructs one
//! shortest route.
//!
//! ```sh
//! cargo run --release --example sssp_roadnet [side]
//! ```

use julienne_repro::algorithms::delta_stepping::{self, SsspParams};
use julienne_repro::algorithms::{bellman_ford, dijkstra};
use julienne_repro::core::query::QueryCtx;
use julienne_repro::graph::generators::grid2d;
use julienne_repro::graph::transform::assign_weights;

fn main() {
    let side: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    let g = assign_weights(&grid2d(side, side), 1, 100, 0x60AD);
    let src = 0u32;
    let dst = (side * side - 1) as u32;
    println!(
        "road network: {side}x{side} grid, n = {}, m = {}",
        g.num_vertices(),
        g.num_edges()
    );

    let oracle = dijkstra::dijkstra(&g, src);
    println!(
        "Dijkstra (oracle): dist[corner->corner] = {}",
        oracle[dst as usize]
    );

    for delta in [1u64, 16, 128, 1024] {
        let r = delta_stepping::sssp(&g, &SsspParams { src, delta }, &QueryCtx::default()).unwrap();
        assert_eq!(r.dist, oracle, "delta = {delta} disagreed with Dijkstra");
        println!(
            "Δ-stepping Δ={delta:>5}: rounds = {:>6}, relaxations = {:>9}  ✓ matches Dijkstra",
            r.rounds, r.relaxations
        );
    }

    let bf = bellman_ford::bellman_ford(&g, src);
    assert_eq!(bf.dist, oracle);
    println!(
        "Bellman–Ford:       rounds = {:>6}, relaxations = {:>9}  (work-inefficient)",
        bf.rounds, bf.relaxations
    );

    // Reconstruct the route greedily: walk from dst toward src following
    // tight edges (dist[u] + w == dist[v]).
    let mut route = vec![dst];
    let mut cur = dst;
    while cur != src {
        let dcur = oracle[cur as usize];
        let pred = g
            .edges_of(cur)
            .find(|&(u, w)| oracle[u as usize] + w as u64 == dcur)
            .map(|(u, _)| u)
            .expect("distance array must admit a tight predecessor");
        route.push(pred);
        cur = pred;
    }
    route.reverse();
    println!(
        "\nshortest corner-to-corner route: {} hops, first 6 stops {:?}",
        route.len() - 1,
        &route[..route.len().min(6)]
    );
}
