//! Quickstart: build a graph, run all four bucketing-based algorithms, and
//! print the results.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use julienne_repro::algorithms::delta_stepping::{self, SsspParams};
use julienne_repro::algorithms::kcore::{self, KcoreParams};
use julienne_repro::algorithms::setcover::{self, SetCoverParams};
use julienne_repro::core::query::QueryCtx;
use julienne_repro::graph::generators::{rmat, set_cover_instance, RmatParams};
use julienne_repro::graph::transform::assign_weights;

fn main() {
    // 1. A heavy-tailed social-network-like graph: 2^14 vertices, ~16 edges
    //    per vertex, symmetrized.
    let g = rmat(14, 16, RmatParams::default(), 42, true);
    println!(
        "graph: n = {}, m = {} (symmetric R-MAT)",
        g.num_vertices(),
        g.num_edges()
    );

    // 2. Coreness via work-efficient bucketed peeling (Algorithm 1).
    let cores = kcore::coreness(&g, &KcoreParams::default(), &QueryCtx::default()).unwrap();
    let k_max = cores.coreness.iter().copied().max().unwrap();
    println!(
        "k-core:  k_max = {k_max}, peeling rounds (rho) = {}, vertices in the {k_max}-core: {}",
        cores.rounds,
        kcore::kcore_vertices(&cores.coreness, k_max).len()
    );

    // 3. wBFS (Δ-stepping with Δ = 1) on small integer weights.
    let wg = assign_weights(&g, 1, 14, 7);
    let sssp = delta_stepping::wbfs(&wg, 0);
    let reached = sssp.dist.iter().filter(|&&d| d != u64::MAX).count();
    println!(
        "wBFS:    reached {reached} vertices from source 0 in {} bucket rounds",
        sssp.rounds
    );

    // 4. Δ-stepping with a coarser Δ on heavy weights.
    let hg = assign_weights(&g, 1, 100_000, 9);
    let ds = delta_stepping::sssp(
        &hg,
        &SsspParams {
            src: 0,
            delta: 32768,
        },
        &QueryCtx::default(),
    )
    .unwrap();
    println!(
        "Δ-step:  max finite distance = {}, rounds = {}",
        ds.dist.iter().filter(|&&d| d != u64::MAX).max().unwrap(),
        ds.rounds
    );

    // 5. Approximate set cover on a bipartite instance.
    let inst = set_cover_instance(256, 1 << 14, 4, 3);
    let cover =
        setcover::cover(&inst, &SetCoverParams { eps: 0.01 }, &QueryCtx::default()).unwrap();
    assert!(setcover::verify_cover(&inst, &cover.cover));
    println!(
        "cover:   {} of {} sets cover all {} elements ({} rounds)",
        cover.cover.len(),
        inst.num_sets,
        inst.num_elements,
        cover.rounds
    );
}
