//! Graph-toolkit tour: generation, statistics, every I/O format, and
//! byte-code compression — the substrate layer of the reproduction.
//!
//! ```sh
//! cargo run --release --example graph_toolkit
//! ```

use julienne_repro::algorithms::stats::graph_stats;
use julienne_repro::graph::compress::CompressedGraph;
use julienne_repro::graph::container::MappedGraph;
use julienne_repro::graph::generators::{chung_lu, erdos_renyi, grid2d, rmat, RmatParams};
use julienne_repro::graph::io::{GraphIo, IoOptions};
use julienne_repro::graph::transform::assign_weights;
use julienne_repro::graph::{Csr, Graph};

fn main() {
    println!("# generator gallery");
    let graphs: Vec<(&str, Graph)> = vec![
        ("erdos-renyi", erdos_renyi(1 << 13, 1 << 16, 1, true)),
        (
            "rmat (heavy-tailed)",
            rmat(13, 8, RmatParams::default(), 2, true),
        ),
        (
            "chung-lu (power-law)",
            chung_lu(1 << 13, 1 << 16, 2.3, 3, true),
        ),
        ("grid (road-like)", grid2d(90, 90)),
    ];
    println!(
        "{:<22} {:>8} {:>9} {:>6} {:>7} {:>8} {:>5}",
        "family", "n", "m", "rho", "k_max", "max_deg", "ecc"
    );
    for (name, g) in &graphs {
        let s = graph_stats(g);
        println!(
            "{:<22} {:>8} {:>9} {:>6} {:>7} {:>8} {:>5}",
            name,
            s.num_vertices,
            s.num_edges,
            s.rho.unwrap_or(0),
            s.k_max.unwrap_or(0),
            s.max_degree,
            s.eccentricity_from_zero
        );
    }

    println!("\n# I/O round-trips through GraphIo (format from the extension)");
    let dir = std::env::temp_dir().join(format!("julienne-toolkit-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let g = &graphs[1].1;
    let wg = assign_weights(g, 1, 1000, 9);
    let opts = IoOptions::default();

    let adj = dir.join("graph.adj");
    GraphIo::write(g, &adj, &opts).unwrap();
    let back: Graph = GraphIo::read(&adj, &opts).unwrap();
    assert_eq!(back.targets(), g.targets());
    println!(
        "  AdjacencyGraph: {} bytes",
        std::fs::metadata(&adj).unwrap().len()
    );

    let el = dir.join("graph.el");
    GraphIo::write(&wg, &el, &opts).unwrap();
    let back: Csr<u32> = GraphIo::read(&el, &opts).unwrap();
    assert_eq!(back.num_edges(), wg.num_edges());
    println!(
        "  edge list:      {} bytes",
        std::fs::metadata(&el).unwrap().len()
    );

    let gr = dir.join("graph.gr");
    GraphIo::write(&wg, &gr, &opts).unwrap();
    let back: Csr<u32> = GraphIo::read(&gr, &opts).unwrap();
    assert_eq!(back.weights(), wg.weights());
    println!(
        "  DIMACS .gr:     {} bytes",
        std::fs::metadata(&gr).unwrap().len()
    );

    let bin = dir.join("graph.bin");
    GraphIo::write(g, &bin, &opts).unwrap();
    let back: Graph = GraphIo::read(&bin, &opts).unwrap();
    assert_eq!(back.offsets(), g.offsets());
    println!(
        "  binary:         {} bytes",
        std::fs::metadata(&bin).unwrap().len()
    );

    println!("\n# .jgr container: write once, mmap forever");
    let jgr = dir.join("graph.jgr");
    GraphIo::write(g, &jgr, &opts).unwrap();
    let mapped: MappedGraph<()> = MappedGraph::open(&jgr).unwrap();
    mapped.verify(&jgr).unwrap();
    assert_eq!(mapped.num_edges(), g.num_edges());
    let mut deg0 = Vec::new();
    mapped.for_each_out(0, |u, ()| deg0.push(u));
    assert_eq!(deg0, g.neighbors(0));
    println!(
        "  container:      {} bytes, open() maps {} bytes with no per-edge work",
        std::fs::metadata(&jgr).unwrap().len(),
        mapped.footprint_bytes()
    );
    std::fs::remove_dir_all(&dir).ok();

    println!("\n# Ligra+-style byte-code compression");
    let cg = CompressedGraph::from_csr(g);
    let raw = g.num_edges() * 4;
    println!(
        "  targets: {} raw bytes -> {} compressed ({:.2}x), decode verified on all vertices",
        raw,
        cg.compressed_bytes(),
        raw as f64 / cg.compressed_bytes() as f64
    );
    for v in 0..g.num_vertices() as u32 {
        let mut want = g.neighbors(v).to_vec();
        want.sort_unstable();
        assert_eq!(cg.neighbors_vec(v), want);
    }
    println!("  ok");
}
