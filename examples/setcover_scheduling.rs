//! Monitoring-station placement as approximate set cover — pick the fewest
//! candidate stations so that every zone is observed.
//!
//! Each station (set) observes a skewed number of zones (elements); the
//! work-efficient parallel cover is compared against sequential greedy and
//! the PBBS-style baseline for both cost and validity.
//!
//! ```sh
//! cargo run --release --example setcover_scheduling [num_zones]
//! ```

use julienne_repro::algorithms::setcover::{cover, verify_cover, SetCoverParams};
use julienne_repro::algorithms::setcover_baselines::{set_cover_greedy_seq, set_cover_pbbs_style};
use julienne_repro::core::query::QueryCtx;
use julienne_repro::graph::generators::set_cover_instance;

fn main() {
    let zones: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(50_000);
    let stations = (zones / 50).max(4);
    let inst = set_cover_instance(stations, zones, 5, 0x57A7);
    println!(
        "placement problem: {stations} candidate stations, {zones} zones, {} observation pairs",
        inst.graph.num_edges() / 2
    );

    let jul = cover(&inst, &SetCoverParams { eps: 0.01 }, &QueryCtx::default()).unwrap();
    assert!(verify_cover(&inst, &jul.cover));
    println!(
        "julienne (parallel, work-efficient): {} stations, {} bucket rounds",
        jul.cover.len(),
        jul.rounds
    );

    let pbbs = set_cover_pbbs_style(&inst, 0.01);
    assert!(verify_cover(&inst, &pbbs.cover));
    println!(
        "pbbs-style (parallel, carry-over):   {} stations, {} rounds, {:.1}x more edges examined",
        pbbs.cover.len(),
        pbbs.rounds,
        pbbs.edges_examined as f64 / jul.edges_examined.max(1) as f64
    );

    let greedy = set_cover_greedy_seq(&inst);
    assert!(verify_cover(&inst, &greedy.cover));
    println!(
        "greedy (sequential, Hn-approx):      {} stations",
        greedy.cover.len()
    );

    println!(
        "\nparallel cost ratio vs greedy: {:.3} (the (1+eps)·Hn guarantee)",
        jul.cover.len() as f64 / greedy.cover.len() as f64
    );

    // Show the assignment for a few zones.
    println!("\nsample assignments (zone -> station):");
    for e in (0..inst.num_elements)
        .step_by((inst.num_elements / 5).max(1))
        .take(5)
    {
        println!("  zone {e:>6} -> station {}", jul.assignment[e]);
    }
}
