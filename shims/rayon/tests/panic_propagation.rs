//! Worker-panic propagation: a panic inside `rayon::join` or a parallel
//! iterator must surface as a panic on the *calling* thread — never hang
//! the pool, kill a worker permanently, or get swallowed.
//!
//! Every case runs under a watchdog so a regression shows up as a test
//! failure ("timed out: pool deadlocked"), not a CI job that hangs.

use rayon::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::Duration;

/// Runs `f` on a fresh thread and fails the test if it does not finish
/// within 30 s (a deadlocked pool never finishes).
fn with_watchdog<R: Send + 'static>(f: impl FnOnce() -> R + Send + 'static) -> R {
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    rx.recv_timeout(Duration::from_secs(30))
        .expect("timed out: pool deadlocked instead of propagating the panic")
}

/// The panic payload must round-trip: the message thrown inside the pool
/// is the message the caller catches.
fn payload_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "<non-string payload>".into())
}

#[test]
fn join_panic_left_propagates() {
    let msg = with_watchdog(|| {
        let r = catch_unwind(|| rayon::join(|| panic!("left side boom"), || 42));
        payload_message(r.unwrap_err())
    });
    assert_eq!(msg, "left side boom");
}

#[test]
fn join_panic_right_propagates() {
    let msg = with_watchdog(|| {
        let r = catch_unwind(|| rayon::join(|| 42, || panic!("right side boom")));
        payload_message(r.unwrap_err())
    });
    assert_eq!(msg, "right side boom");
}

#[test]
fn join_panic_both_sides_propagates_one() {
    let msg = with_watchdog(|| {
        let r =
            catch_unwind(|| rayon::join(|| panic!("first payload"), || panic!("second payload")));
        payload_message(r.unwrap_err())
    });
    assert!(
        msg == "first payload" || msg == "second payload",
        "unexpected payload {msg:?}"
    );
}

#[test]
fn par_iter_for_each_panic_propagates() {
    let r = with_watchdog(|| {
        catch_unwind(|| {
            (0..100_000u64)
                .into_par_iter()
                .for_each(|i| assert!(i != 77_777, "hit the poison element"));
        })
        .is_err()
    });
    assert!(r, "panic inside for_each was swallowed");
}

#[test]
fn par_iter_map_collect_panic_propagates() {
    let r = with_watchdog(|| {
        catch_unwind(|| {
            let _v: Vec<u64> = (0..50_000u64)
                .into_par_iter()
                .map(|i| if i == 49_999 { panic!("map boom") } else { i })
                .collect();
        })
        .is_err()
    });
    assert!(r, "panic inside map/collect was swallowed");
}

#[test]
fn nested_join_panic_propagates_to_outer_caller() {
    let r = with_watchdog(|| {
        catch_unwind(|| {
            rayon::join(
                || rayon::join(|| panic!("inner boom"), || 1),
                || (0..10_000u64).into_par_iter().map(|i| i * 2).sum::<u64>(),
            )
        })
        .is_err()
    });
    assert!(r, "nested panic was swallowed");
}

#[test]
fn pool_survives_panics_and_keeps_computing_correctly() {
    // After a burst of panicking jobs, the pool must still produce correct
    // results: workers survive (panics are caught per piece) and no job
    // state leaks into subsequent submissions.
    let correct = AtomicUsize::new(0);
    with_watchdog(move || {
        for round in 0..20 {
            let _ = catch_unwind(AssertUnwindSafe(|| {
                (0..10_000u64)
                    .into_par_iter()
                    .for_each(|i| assert!(i != 5_000 || round % 2 != 0, "poison"));
            }));
            let sum: u64 = (0..10_000u64).into_par_iter().sum();
            assert_eq!(sum, 10_000 * 9_999 / 2, "pool corrupted after panic");
            correct.fetch_add(1, Ordering::SeqCst);
        }
        assert_eq!(correct.load(Ordering::SeqCst), 20);
    });
}

#[test]
fn panic_propagates_under_chaos_mode_too() {
    let r = with_watchdog(|| {
        rayon::set_chaos_seed(Some(0xBAD_5EED));
        let got = catch_unwind(|| {
            (0..100_000u64)
                .into_par_iter()
                .for_each(|i| assert!(i != 31_337, "chaos poison"));
        })
        .is_err();
        rayon::set_chaos_seed(None);
        got
    });
    assert!(r, "panic under chaos mode was swallowed");
}

#[test]
fn panic_at_every_thread_count_propagates() {
    for threads in [1, 2, 4, 8] {
        let r = with_watchdog(move || {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            pool.install(|| {
                catch_unwind(|| {
                    (0..50_000u64)
                        .into_par_iter()
                        .for_each(|i| assert!(i != 25_000, "poison"));
                })
                .is_err()
            })
        });
        assert!(r, "panic swallowed at {threads} threads");
    }
}
