//! The execution engine: a lazily-initialized global pool of `std::thread`
//! workers plus a piece-scheduling primitive, [`run_pieces`].
//!
//! # Model
//!
//! Work arrives as a *piece job*: a closure `f: Fn(usize) + Sync` together
//! with a piece count `n`; every index in `0..n` must be executed exactly
//! once. The submitting thread posts up to `current_num_threads() - 1`
//! *copies* of a reference to the (stack-allocated) job onto a global queue,
//! then joins the piece-claiming loop itself. Each worker that pops a copy
//! claims pieces from a shared atomic counter until none remain, then
//! retires the copy. The submitter finally removes any still-unpopped copies
//! from the queue and blocks until every popped copy has retired — only then
//! is the job's stack frame allowed to die, which makes the raw job pointer
//! sound.
//!
//! Because piece *counts* are chosen by the caller as a function of input
//! size only (never of the thread count), results assembled in piece order
//! are bit-identical no matter how many workers participate — the
//! determinism contract the rest of the workspace relies on.
//!
//! # Nesting and deadlock-freedom
//!
//! A piece body may itself call [`run_pieces`] (or [`join`](crate::join)).
//! The inner call follows the same protocol; the key property is that a
//! submitter never waits on a queue entry — stale copies are *removed*
//! before blocking — so it only ever waits on copies held by live threads
//! that are actively draining a finite piece counter. No cyclic wait can
//! form.
//!
//! # Panics
//!
//! A panic inside a piece is caught, recorded on the job, and aborts the
//! remaining pieces of that job; the submitting thread re-raises the payload
//! after the job quiesces, so panics propagate to the caller exactly like
//! they do under sequential execution (and worker threads survive).

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

/// Upper bound on worker threads the shim will ever spawn; requests beyond
/// it are clamped. Generous relative to any host this workspace targets.
pub const MAX_THREADS: usize = 256;

/// A piece job living on the submitter's stack. See the module docs for the
/// lifecycle that makes the raw pointers sound.
struct Job {
    /// Type-erased pointer to the piece body (`&F` on the submitter's
    /// stack). Valid for the lifetime of the job's stack frame; the
    /// submitter does not return until `outstanding` reaches zero.
    func: *const (),
    /// Monomorphised trampoline restoring `func`'s type to call it.
    call: unsafe fn(*const (), usize),
    /// Total pieces.
    n: usize,
    /// Next piece index to claim (claims at or past `n` are spurious).
    next: AtomicUsize,
    /// Queue copies popped by workers but not yet retired, plus copies still
    /// sitting in the queue. The submitter may only return at zero.
    outstanding: AtomicUsize,
    /// First panic payload raised by a piece, if any.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    /// Guards the completion wait; workers retire under this lock so the
    /// submitter cannot miss the final notification.
    lock: Mutex<()>,
    cv: Condvar,
}

impl Job {
    /// Claims and runs pieces until the counter is exhausted.
    fn run_loop(&self) {
        loop {
            let i = self.next.fetch_add(1, Ordering::SeqCst);
            if i >= self.n {
                return;
            }
            // SAFETY: `func`/`call` outlive the job (see module docs).
            if let Err(payload) =
                catch_unwind(AssertUnwindSafe(|| unsafe { (self.call)(self.func, i) }))
            {
                let mut slot = self.panic.lock().unwrap();
                if slot.is_none() {
                    *slot = Some(payload);
                }
                // Abort the job's remaining pieces; claimed ones finish.
                self.next.store(self.n, Ordering::SeqCst);
            }
        }
    }

    /// Retires `k` copies, waking the submitter when the last one goes.
    fn retire(&self, k: usize) {
        if k == 0 {
            return;
        }
        let _guard = self.lock.lock().unwrap();
        if self.outstanding.fetch_sub(k, Ordering::SeqCst) == k {
            self.cv.notify_all();
        }
    }

    /// Blocks until every copy has retired.
    fn wait_quiescent(&self) {
        let mut guard = self.lock.lock().unwrap();
        while self.outstanding.load(Ordering::SeqCst) > 0 {
            guard = self.cv.wait(guard).unwrap();
        }
    }
}

/// A sendable reference to a stack job. Soundness: see [`Job`].
#[derive(Clone, Copy)]
struct JobRef(*const Job);
unsafe impl Send for JobRef {}

impl JobRef {
    fn job(&self) -> &Job {
        unsafe { &*self.0 }
    }
}

/// Global pool state.
struct Pool {
    queue: Mutex<VecDeque<JobRef>>,
    queue_cv: Condvar,
    /// Worker threads spawned so far (they are detached and never exit).
    spawned: Mutex<usize>,
    /// The process-wide default thread count (env or hardware).
    threads: AtomicUsize,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        queue: Mutex::new(VecDeque::new()),
        queue_cv: Condvar::new(),
        spawned: Mutex::new(0),
        threads: AtomicUsize::new(default_threads()),
    })
}

/// Initial thread count: `JULIENNE_NUM_THREADS` if set and parseable, else
/// the hardware parallelism, clamped to `1..=MAX_THREADS`.
fn default_threads() -> usize {
    let from_env = std::env::var("JULIENNE_NUM_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok());
    let n = from_env.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    });
    n.clamp(1, MAX_THREADS)
}

thread_local! {
    /// Per-thread override installed by [`ThreadPool::install`]
    /// (0 = no override).
    static THREAD_CAP_OVERRIDE: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// The number of threads "parallel" operations submitted from this thread
/// will use: the innermost [`ThreadPool::install`](crate::ThreadPool)
/// override if one is active, else the process-wide default
/// (`JULIENNE_NUM_THREADS`, [`set_num_threads`], or hardware parallelism).
pub fn current_num_threads() -> usize {
    let o = THREAD_CAP_OVERRIDE.with(|c| c.get());
    if o != 0 {
        o
    } else {
        pool().threads.load(Ordering::Relaxed)
    }
}

/// Sets the process-wide default thread count (clamped to
/// `1..=MAX_THREADS`). Does not affect scopes currently inside a
/// [`ThreadPool::install`](crate::ThreadPool) override.
pub fn set_num_threads(n: usize) {
    pool()
        .threads
        .store(n.clamp(1, MAX_THREADS), Ordering::Relaxed);
}

/// Runs `f` with this thread's effective thread count overridden to `n`
/// (the [`ThreadPool::install`](crate::ThreadPool) mechanism). Restores the
/// previous override even on unwind.
pub(crate) fn with_thread_cap<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_CAP_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let prev = THREAD_CAP_OVERRIDE.with(|c| c.get());
    let _restore = Restore(prev);
    THREAD_CAP_OVERRIDE.with(|c| c.set(n.clamp(1, MAX_THREADS)));
    f()
}

/// Ensures at least `want` detached worker threads exist.
fn ensure_workers(want: usize) {
    let p = pool();
    let mut spawned = p.spawned.lock().unwrap();
    while *spawned < want.min(MAX_THREADS) {
        let id = *spawned;
        std::thread::Builder::new()
            .name(format!("julienne-worker-{id}"))
            .spawn(worker_main)
            .expect("failed to spawn worker thread");
        *spawned += 1;
    }
}

/// Worker body: pop a job copy, drain its pieces, retire, repeat forever.
fn worker_main() {
    let p = pool();
    loop {
        let job_ref = {
            let mut q = p.queue.lock().unwrap();
            loop {
                if let Some(j) = q.pop_front() {
                    break j;
                }
                q = p.queue_cv.wait(q).unwrap();
            }
        };
        let job = job_ref.job();
        job.run_loop();
        job.retire(1);
    }
}

/// Executes `f(0)`, `f(1)`, …, `f(n - 1)`, each exactly once, distributed
/// over up to `current_num_threads()` threads (including the caller). Does
/// not return until every piece has finished. Panics from pieces are
/// re-raised on the caller.
pub fn run_pieces<F: Fn(usize) + Sync>(n: usize, f: F) {
    let threads = current_num_threads();
    if n <= 1 || threads <= 1 {
        // Sequential fast path — identical results by the determinism
        // contract (piece counts never depend on the thread count).
        for i in 0..n {
            f(i);
        }
        return;
    }

    let copies = (threads - 1).min(n - 1);
    ensure_workers(copies);

    unsafe fn call_piece<F: Fn(usize) + Sync>(data: *const (), i: usize) {
        (*(data as *const F))(i)
    }
    let job = Job {
        func: &f as *const F as *const (),
        call: call_piece::<F>,
        n,
        next: AtomicUsize::new(0),
        outstanding: AtomicUsize::new(copies),
        panic: Mutex::new(None),
        lock: Mutex::new(()),
        cv: Condvar::new(),
    };
    let job_ref = JobRef(&job as *const Job);

    {
        let p = pool();
        let mut q = p.queue.lock().unwrap();
        for _ in 0..copies {
            q.push_back(job_ref);
        }
        drop(q);
        p.queue_cv.notify_all();
    }

    // The caller is a full participant.
    job.run_loop();

    // Remove copies nobody picked up, then wait for the ones that were.
    let stale = {
        let p = pool();
        let mut q = p.queue.lock().unwrap();
        let before = q.len();
        q.retain(|j| !std::ptr::eq(j.0, job_ref.0));
        before - q.len()
    };
    job.retire(stale);
    job.wait_quiescent();

    let payload = job.panic.lock().unwrap().take();
    if let Some(payload) = payload {
        std::panic::resume_unwind(payload);
    }
}

/// Deterministic piece count for an input of `len` elements: `1` for small
/// inputs, else one piece per [`PIECE_LEN`] elements capped at
/// [`MAX_PIECES`]. A pure function of `len` — *never* of the thread count —
/// so piece boundaries (and therefore any per-piece partial results) are
/// identical across runs at different thread counts.
pub fn piece_count(len: usize) -> usize {
    if len <= PIECE_LEN {
        1
    } else {
        len.div_ceil(PIECE_LEN).min(MAX_PIECES)
    }
}

/// Minimum elements per piece before fan-out pays for itself.
pub const PIECE_LEN: usize = 2048;

/// Piece-count cap; bounds per-call scheduling overhead while leaving
/// enough slack for the deepest machines this shim targets.
pub const MAX_PIECES: usize = 64;

/// The half-open range of elements belonging to piece `i` of `k` over
/// `len` elements: evenly split with the remainder spread over the first
/// pieces (same convention as `chunk_bounds` in `julienne-primitives`).
pub fn piece_bounds(len: usize, k: usize, i: usize) -> (usize, usize) {
    let base = len / k;
    let extra = len % k;
    let start = i * base + i.min(extra);
    let end = start + base + usize::from(i < extra);
    (start, end)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn pieces_each_run_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        run_pieces(100, |i| {
            hits[i].fetch_add(1, Ordering::SeqCst);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn nested_run_pieces_completes() {
        let total = AtomicU64::new(0);
        run_pieces(8, |_| {
            run_pieces(8, |j| {
                total.fetch_add(j as u64, Ordering::SeqCst);
            });
        });
        assert_eq!(total.load(Ordering::SeqCst), 8 * 28);
    }

    #[test]
    fn piece_panic_propagates() {
        let r = std::panic::catch_unwind(|| {
            run_pieces(16, |i| {
                if i == 7 {
                    panic!("boom");
                }
            });
        });
        assert!(r.is_err());
    }

    #[test]
    fn piece_bounds_cover_exactly() {
        for len in [0usize, 1, 5, 2048, 2049, 10_000, 1_000_000] {
            let k = piece_count(len).max(1);
            let mut cursor = 0;
            for i in 0..k {
                let (s, e) = piece_bounds(len, k, i);
                assert_eq!(s, cursor);
                assert!(e >= s);
                cursor = e;
            }
            assert_eq!(cursor, len);
        }
    }

    #[test]
    fn piece_count_is_thread_independent() {
        // Changing the thread count must not change piece counts.
        let before: Vec<usize> = [10, 5000, 200_000]
            .iter()
            .map(|&n| piece_count(n))
            .collect();
        with_thread_cap(7, || {
            let after: Vec<usize> = [10, 5000, 200_000]
                .iter()
                .map(|&n| piece_count(n))
                .collect();
            assert_eq!(before, after);
        });
    }
}
