//! The execution engine: a lazily-initialized global pool of `std::thread`
//! workers plus a piece-scheduling primitive, [`run_pieces`].
//!
//! # Model
//!
//! Work arrives as a *piece job*: a closure `f: Fn(usize) + Sync` together
//! with a piece count `n`; every index in `0..n` must be executed exactly
//! once. The submitting thread posts up to `current_num_threads() - 1`
//! *copies* of a reference to the (stack-allocated) job onto a global queue,
//! then joins the piece-claiming loop itself. Each worker that pops a copy
//! claims pieces from a shared atomic counter until none remain, then
//! retires the copy. The submitter finally removes any still-unpopped copies
//! from the queue and blocks until every popped copy has retired — only then
//! is the job's stack frame allowed to die, which makes the raw job pointer
//! sound.
//!
//! Because piece *counts* are chosen by the caller as a function of input
//! size only (never of the thread count), results assembled in piece order
//! are bit-identical no matter how many workers participate — the
//! determinism contract the rest of the workspace relies on.
//!
//! # Nesting and deadlock-freedom
//!
//! A piece body may itself call [`run_pieces`] (or [`join`](crate::join)).
//! The inner call follows the same protocol; the key property is that a
//! submitter never waits on a queue entry — stale copies are *removed*
//! before blocking — so it only ever waits on copies held by live threads
//! that are actively draining a finite piece counter. No cyclic wait can
//! form.
//!
//! # Panics
//!
//! A panic inside a piece is caught, recorded on the job, and aborts the
//! remaining pieces of that job; the submitting thread re-raises the payload
//! after the job quiesces, so panics propagate to the caller exactly like
//! they do under sequential execution (and worker threads survive).
//!
//! # Schedule chaos
//!
//! Setting `JULIENNE_CHAOS_SEED=<u64>` (or calling [`set_chaos_seed`])
//! turns on a seeded adversarial scheduler: piece claim order is permuted
//! per job, pieces are delayed with injected yields/sleeps, and workers
//! stall briefly before joining a job. Every perturbation derives from the
//! seed by hashing, so a failing seed replays the same perturbation
//! schedule. The determinism contract must hold *under* chaos — pieces are
//! still executed exactly once each, and partial results are still
//! combined in piece-index order — so any output difference a chaos run
//! exposes is a real data race or ordering assumption, never an artifact
//! of the chaos layer itself.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

/// Upper bound on worker threads the shim will ever spawn; requests beyond
/// it are clamped. Generous relative to any host this workspace targets.
pub const MAX_THREADS: usize = 256;

// ---------------------------------------------------------------------------
// Schedule chaos: a seeded adversarial scheduler (see module docs).
// ---------------------------------------------------------------------------

/// Global chaos state. `enabled` gates everything; `seed` feeds every
/// perturbation decision; `jobs`/`pops` are salts so consecutive jobs (and
/// worker wake-ups) see different perturbation schedules.
struct Chaos {
    enabled: AtomicBool,
    seed: AtomicU64,
    jobs: AtomicU64,
    pops: AtomicU64,
}

fn chaos() -> &'static Chaos {
    static CHAOS: OnceLock<Chaos> = OnceLock::new();
    CHAOS.get_or_init(|| {
        let from_env = std::env::var("JULIENNE_CHAOS_SEED")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok());
        Chaos {
            enabled: AtomicBool::new(from_env.is_some()),
            seed: AtomicU64::new(from_env.unwrap_or(0)),
            jobs: AtomicU64::new(0),
            pops: AtomicU64::new(0),
        }
    })
}

/// Turns schedule chaos on with the given seed, or off with `None`.
/// Overrides the `JULIENNE_CHAOS_SEED` environment variable.
pub fn set_chaos_seed(seed: Option<u64>) {
    let c = chaos();
    match seed {
        Some(s) => {
            c.seed.store(s, Ordering::SeqCst);
            c.enabled.store(true, Ordering::SeqCst);
        }
        None => c.enabled.store(false, Ordering::SeqCst),
    }
}

/// The active chaos seed, if chaos mode is on.
pub fn chaos_seed() -> Option<u64> {
    let c = chaos();
    if c.enabled.load(Ordering::SeqCst) {
        Some(c.seed.load(Ordering::SeqCst))
    } else {
        None
    }
}

/// splitmix64 finalizer: the hash behind every chaos decision.
fn chaos_mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Per-job chaos salt: `hash(seed, job counter)`, or `None` when chaos is
/// off. Each submitted job draws a fresh salt so repeated identical jobs
/// still see different claim orders and delays.
fn chaos_job_salt() -> Option<u64> {
    let seed = chaos_seed()?;
    let job = chaos().jobs.fetch_add(1, Ordering::SeqCst);
    Some(chaos_mix(seed ^ chaos_mix(job)))
}

/// A seeded Fisher–Yates permutation of `0..n`: the order in which a
/// chaotic job's claims map to piece indices.
fn chaos_perm(n: usize, salt: u64) -> Vec<u32> {
    let mut perm: Vec<u32> = (0..n as u32).collect();
    let mut state = salt;
    for i in (1..n).rev() {
        state = chaos_mix(state);
        let j = (state % (i as u64 + 1)) as usize;
        perm.swap(i, j);
    }
    perm
}

/// Injects a seeded delay: nothing (½), a yield (¼), or a short sleep (¼,
/// up to ~64 µs). Derives entirely from `h`, so a chaos run with the same
/// seed injects the same delays at the same points.
fn chaos_delay(h: u64) {
    match h % 4 {
        0 | 1 => {}
        2 => std::thread::yield_now(),
        _ => std::thread::sleep(std::time::Duration::from_micros(1 + (h >> 2) % 64)),
    }
}

/// Chaos hook for workers picking up a job copy: occasionally stall the
/// worker (up to ~256 µs) before it starts claiming pieces, simulating a
/// late-arriving or descheduled worker.
fn chaos_worker_stall() {
    if let Some(seed) = chaos_seed() {
        let pop = chaos().pops.fetch_add(1, Ordering::SeqCst);
        let h = chaos_mix(seed ^ 0x5741_1000 ^ chaos_mix(pop));
        if h % 4 == 0 {
            std::thread::sleep(std::time::Duration::from_micros(1 + (h >> 2) % 256));
        }
    }
}

/// Chaos hook for the parallel-iterator layer (`iter::drive`): perturbs
/// the moment piece `i`'s consumer starts, independently of the pool-level
/// claim reordering.
pub(crate) fn chaos_piece_pause(i: usize) {
    if let Some(seed) = chaos_seed() {
        chaos_delay(chaos_mix(seed ^ 0x17E2_0000 ^ i as u64));
    }
}

/// A piece job living on the submitter's stack. See the module docs for the
/// lifecycle that makes the raw pointers sound.
struct Job {
    /// Type-erased pointer to the piece body (`&F` on the submitter's
    /// stack). Valid for the lifetime of the job's stack frame; the
    /// submitter does not return until `outstanding` reaches zero.
    func: *const (),
    /// Monomorphised trampoline restoring `func`'s type to call it.
    call: unsafe fn(*const (), usize),
    /// Total pieces.
    n: usize,
    /// Next piece index to claim (claims at or past `n` are spurious).
    next: AtomicUsize,
    /// Chaos mode only: per-job salt feeding the injected delays.
    chaos_salt: Option<u64>,
    /// Chaos mode only: claim-order permutation (claim `c` runs piece
    /// `perm[c]`). Claim order never affects results — partial results are
    /// combined by piece index — which is exactly what chaos mode stresses.
    perm: Option<Vec<u32>>,
    /// Queue copies popped by workers but not yet retired, plus copies still
    /// sitting in the queue. The submitter may only return at zero.
    outstanding: AtomicUsize,
    /// First panic payload raised by a piece, if any.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    /// Guards the completion wait; workers retire under this lock so the
    /// submitter cannot miss the final notification.
    lock: Mutex<()>,
    cv: Condvar,
}

impl Job {
    /// Claims and runs pieces until the counter is exhausted.
    fn run_loop(&self) {
        loop {
            let claim = self.next.fetch_add(1, Ordering::SeqCst);
            if claim >= self.n {
                return;
            }
            // Chaos: claims map to pieces through a seeded permutation, and
            // each claim may be delayed before its piece runs.
            let i = match &self.perm {
                Some(p) => p[claim] as usize,
                None => claim,
            };
            if let Some(salt) = self.chaos_salt {
                chaos_delay(chaos_mix(salt ^ claim as u64));
            }
            // SAFETY: `func`/`call` outlive the job (see module docs).
            if let Err(payload) =
                catch_unwind(AssertUnwindSafe(|| unsafe { (self.call)(self.func, i) }))
            {
                let mut slot = self.panic.lock().unwrap();
                if slot.is_none() {
                    *slot = Some(payload);
                }
                // Abort the job's remaining pieces; claimed ones finish.
                self.next.store(self.n, Ordering::SeqCst);
            }
        }
    }

    /// Retires `k` copies, waking the submitter when the last one goes.
    fn retire(&self, k: usize) {
        if k == 0 {
            return;
        }
        let _guard = self.lock.lock().unwrap();
        if self.outstanding.fetch_sub(k, Ordering::SeqCst) == k {
            self.cv.notify_all();
        }
    }

    /// Blocks until every copy has retired.
    fn wait_quiescent(&self) {
        let mut guard = self.lock.lock().unwrap();
        while self.outstanding.load(Ordering::SeqCst) > 0 {
            guard = self.cv.wait(guard).unwrap();
        }
    }
}

/// A sendable reference to a stack job. Soundness: see [`Job`].
#[derive(Clone, Copy)]
struct JobRef(*const Job);
unsafe impl Send for JobRef {}

impl JobRef {
    fn job(&self) -> &Job {
        unsafe { &*self.0 }
    }
}

/// Global pool state.
struct Pool {
    queue: Mutex<VecDeque<JobRef>>,
    queue_cv: Condvar,
    /// Worker threads spawned so far (they are detached and never exit).
    spawned: Mutex<usize>,
    /// The process-wide default thread count (env or hardware).
    threads: AtomicUsize,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        queue: Mutex::new(VecDeque::new()),
        queue_cv: Condvar::new(),
        spawned: Mutex::new(0),
        threads: AtomicUsize::new(default_threads()),
    })
}

/// Initial thread count: `JULIENNE_NUM_THREADS` if set and parseable, else
/// the hardware parallelism, clamped to `1..=MAX_THREADS`.
fn default_threads() -> usize {
    let from_env = std::env::var("JULIENNE_NUM_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok());
    let n = from_env.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    });
    n.clamp(1, MAX_THREADS)
}

thread_local! {
    /// Per-thread override installed by [`ThreadPool::install`]
    /// (0 = no override).
    static THREAD_CAP_OVERRIDE: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// The number of threads "parallel" operations submitted from this thread
/// will use: the innermost [`ThreadPool::install`](crate::ThreadPool)
/// override if one is active, else the process-wide default
/// (`JULIENNE_NUM_THREADS`, [`set_num_threads`], or hardware parallelism).
pub fn current_num_threads() -> usize {
    let o = THREAD_CAP_OVERRIDE.with(|c| c.get());
    if o != 0 {
        o
    } else {
        pool().threads.load(Ordering::Relaxed)
    }
}

/// Sets the process-wide default thread count (clamped to
/// `1..=MAX_THREADS`). Does not affect scopes currently inside a
/// [`ThreadPool::install`](crate::ThreadPool) override.
pub fn set_num_threads(n: usize) {
    pool()
        .threads
        .store(n.clamp(1, MAX_THREADS), Ordering::Relaxed);
}

/// Runs `f` with this thread's effective thread count overridden to `n`
/// (the [`ThreadPool::install`](crate::ThreadPool) mechanism). Restores the
/// previous override even on unwind.
pub(crate) fn with_thread_cap<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_CAP_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let prev = THREAD_CAP_OVERRIDE.with(|c| c.get());
    let _restore = Restore(prev);
    THREAD_CAP_OVERRIDE.with(|c| c.set(n.clamp(1, MAX_THREADS)));
    f()
}

/// Ensures at least `want` detached worker threads exist.
fn ensure_workers(want: usize) {
    let p = pool();
    let mut spawned = p.spawned.lock().unwrap();
    while *spawned < want.min(MAX_THREADS) {
        let id = *spawned;
        std::thread::Builder::new()
            .name(format!("julienne-worker-{id}"))
            .spawn(worker_main)
            .expect("failed to spawn worker thread");
        *spawned += 1;
    }
}

/// Worker body: pop a job copy, drain its pieces, retire, repeat forever.
fn worker_main() {
    let p = pool();
    loop {
        let job_ref = {
            let mut q = p.queue.lock().unwrap();
            loop {
                if let Some(j) = q.pop_front() {
                    break j;
                }
                q = p.queue_cv.wait(q).unwrap();
            }
        };
        let job = job_ref.job();
        chaos_worker_stall();
        job.run_loop();
        job.retire(1);
    }
}

/// Executes `f(0)`, `f(1)`, …, `f(n - 1)`, each exactly once, distributed
/// over up to `current_num_threads()` threads (including the caller). Does
/// not return until every piece has finished. Panics from pieces are
/// re-raised on the caller.
pub fn run_pieces<F: Fn(usize) + Sync>(n: usize, f: F) {
    let threads = current_num_threads();
    if n <= 1 || threads <= 1 {
        // Sequential fast path — identical results by the determinism
        // contract (piece counts never depend on the thread count).
        for i in 0..n {
            f(i);
        }
        return;
    }

    let copies = (threads - 1).min(n - 1);
    ensure_workers(copies);

    unsafe fn call_piece<F: Fn(usize) + Sync>(data: *const (), i: usize) {
        (*(data as *const F))(i)
    }
    let chaos_salt = chaos_job_salt();
    let job = Job {
        func: &f as *const F as *const (),
        call: call_piece::<F>,
        n,
        next: AtomicUsize::new(0),
        chaos_salt,
        perm: chaos_salt.map(|s| chaos_perm(n, s)),
        outstanding: AtomicUsize::new(copies),
        panic: Mutex::new(None),
        lock: Mutex::new(()),
        cv: Condvar::new(),
    };
    let job_ref = JobRef(&job as *const Job);

    {
        let p = pool();
        let mut q = p.queue.lock().unwrap();
        for _ in 0..copies {
            q.push_back(job_ref);
        }
        drop(q);
        p.queue_cv.notify_all();
    }

    // The caller is a full participant.
    job.run_loop();

    // Remove copies nobody picked up, then wait for the ones that were.
    let stale = {
        let p = pool();
        let mut q = p.queue.lock().unwrap();
        let before = q.len();
        q.retain(|j| !std::ptr::eq(j.0, job_ref.0));
        before - q.len()
    };
    job.retire(stale);
    job.wait_quiescent();

    let payload = job.panic.lock().unwrap().take();
    if let Some(payload) = payload {
        std::panic::resume_unwind(payload);
    }
}

/// Deterministic piece count for an input of `len` elements: `1` for small
/// inputs, else one piece per [`PIECE_LEN`] elements capped at
/// [`MAX_PIECES`]. A pure function of `len` — *never* of the thread count —
/// so piece boundaries (and therefore any per-piece partial results) are
/// identical across runs at different thread counts.
pub fn piece_count(len: usize) -> usize {
    if len <= PIECE_LEN {
        1
    } else {
        len.div_ceil(PIECE_LEN).min(MAX_PIECES)
    }
}

/// Minimum elements per piece before fan-out pays for itself.
pub const PIECE_LEN: usize = 2048;

/// Piece-count cap; bounds per-call scheduling overhead while leaving
/// enough slack for the deepest machines this shim targets.
pub const MAX_PIECES: usize = 64;

/// The half-open range of elements belonging to piece `i` of `k` over
/// `len` elements: evenly split with the remainder spread over the first
/// pieces (same convention as `chunk_bounds` in `julienne-primitives`).
pub fn piece_bounds(len: usize, k: usize, i: usize) -> (usize, usize) {
    let base = len / k;
    let extra = len % k;
    let start = i * base + i.min(extra);
    let end = start + base + usize::from(i < extra);
    (start, end)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn pieces_each_run_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        run_pieces(100, |i| {
            hits[i].fetch_add(1, Ordering::SeqCst);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn nested_run_pieces_completes() {
        let total = AtomicU64::new(0);
        run_pieces(8, |_| {
            run_pieces(8, |j| {
                total.fetch_add(j as u64, Ordering::SeqCst);
            });
        });
        assert_eq!(total.load(Ordering::SeqCst), 8 * 28);
    }

    #[test]
    fn piece_panic_propagates() {
        let r = std::panic::catch_unwind(|| {
            run_pieces(16, |i| {
                if i == 7 {
                    panic!("boom");
                }
            });
        });
        assert!(r.is_err());
    }

    #[test]
    fn piece_bounds_cover_exactly() {
        for len in [0usize, 1, 5, 2048, 2049, 10_000, 1_000_000] {
            let k = piece_count(len).max(1);
            let mut cursor = 0;
            for i in 0..k {
                let (s, e) = piece_bounds(len, k, i);
                assert_eq!(s, cursor);
                assert!(e >= s);
                cursor = e;
            }
            assert_eq!(cursor, len);
        }
    }

    #[test]
    fn chaos_perm_is_a_permutation() {
        for n in [1usize, 2, 7, 64, 1000] {
            for salt in [0u64, 1, 0xDEAD_BEEF] {
                let mut p = chaos_perm(n, salt);
                p.sort_unstable();
                let want: Vec<u32> = (0..n as u32).collect();
                assert_eq!(p, want, "n={n} salt={salt}");
            }
        }
    }

    #[test]
    fn chaos_mode_runs_pieces_exactly_once_with_identical_results() {
        let xs: Vec<u64> = (0..300_000).map(|i| i * 7 + 1).collect();
        let clean: u64 = {
            use crate::prelude::*;
            xs.par_iter().copied().sum()
        };
        for seed in [0u64, 1, 42, u64::MAX] {
            set_chaos_seed(Some(seed));
            let hits: Vec<AtomicUsize> = (0..97).map(|_| AtomicUsize::new(0)).collect();
            run_pieces(97, |i| {
                hits[i].fetch_add(1, Ordering::SeqCst);
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::SeqCst) == 1),
                "seed {seed}: some piece ran zero or multiple times"
            );
            let chaotic: u64 = {
                use crate::prelude::*;
                xs.par_iter().copied().sum()
            };
            assert_eq!(chaotic, clean, "seed {seed} changed a reduction result");
        }
        set_chaos_seed(None);
        assert_eq!(chaos_seed(), None);
    }

    #[test]
    fn piece_count_is_thread_independent() {
        // Changing the thread count must not change piece counts.
        let before: Vec<usize> = [10, 5000, 200_000]
            .iter()
            .map(|&n| piece_count(n))
            .collect();
        with_thread_cap(7, || {
            let after: Vec<usize> = [10, 5000, 200_000]
                .iter()
                .map(|&n| piece_count(n))
                .collect();
            assert_eq!(before, after);
        });
    }
}
