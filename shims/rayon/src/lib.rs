//! Offline drop-in shim for the subset of the [rayon] API this workspace
//! uses.
//!
//! The build container has no crates.io access, so the real rayon cannot be
//! fetched. This crate provides the same *interface* — `par_iter`,
//! `into_par_iter`, `par_chunks`, `par_sort_unstable*`, thread-pool entry
//! points — with a deterministic sequential execution model: every
//! "parallel" iterator is an ordinary lazy iterator evaluated in order.
//!
//! The semantics match rayon for all code written against it (rayon makes
//! no ordering promises that sequential order violates, and all call sites
//! in this workspace are order-independent by construction). Swapping the
//! real rayon back in is a one-line change in the workspace manifest.
//!
//! [rayon]: https://docs.rs/rayon

// Shim code mirrors the upstream API surface, not clippy idiom.
#![allow(clippy::all)]

pub mod iter;
pub mod slice;

pub mod prelude {
    //! Mirrors `rayon::prelude`: glob-import to get the `par_*` methods.
    pub use crate::iter::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParIter,
    };
    pub use crate::slice::{ParallelSlice, ParallelSliceMut};
}

/// Number of worker threads. The shim executes sequentially, so this is
/// always 1 (callers use it to size chunk counts; 1 keeps them minimal).
pub fn current_num_threads() -> usize {
    1
}

/// Runs both closures and returns their results. Sequential in the shim.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// Error type for [`ThreadPoolBuilder::build`]; never actually produced.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error (unreachable in the shim)")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A handle standing in for a rayon thread pool.
pub struct ThreadPool {
    _threads: usize,
}

impl ThreadPool {
    /// Runs `f` "inside" the pool (directly, in the shim).
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        f()
    }
}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the requested worker count (recorded but unused).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    /// Builds the pool. Infallible in the shim.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            _threads: self.threads,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_chain_matches_sequential() {
        let xs = vec![1u32, 2, 3, 4, 5];
        let doubled: Vec<u32> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8, 10]);
        let sum: u32 = xs.par_iter().copied().sum();
        assert_eq!(sum, 15);
    }

    #[test]
    fn into_par_iter_over_range() {
        let squares: Vec<usize> = (0..5usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares, vec![0, 1, 4, 9, 16]);
    }

    #[test]
    fn reduce_with_identity() {
        let m = (0..10u64).into_par_iter().reduce(|| u64::MAX, u64::min);
        assert_eq!(m, 0);
        let empty = (0..0u64).into_par_iter().reduce(|| 7, u64::min);
        assert_eq!(empty, 7);
    }

    #[test]
    fn par_sort_and_chunks() {
        let mut xs = vec![5u32, 1, 4, 2, 3];
        xs.par_sort_unstable();
        assert_eq!(xs, vec![1, 2, 3, 4, 5]);
        let mut pairs = vec![(2, 'b'), (1, 'a'), (3, 'c')];
        pairs.par_sort_unstable_by_key(|p| p.0);
        assert_eq!(pairs, vec![(1, 'a'), (2, 'b'), (3, 'c')]);
        let sums: Vec<u32> = xs.par_chunks(2).map(|c| c.iter().sum()).collect();
        assert_eq!(sums, vec![3, 7, 5]);
    }

    #[test]
    fn zip_and_enumerate() {
        let a = vec![1, 2, 3];
        let b = vec![10, 20, 30];
        let zipped: Vec<(usize, i32)> = a
            .par_iter()
            .zip(b.par_iter())
            .enumerate()
            .map(|(i, (&x, &y))| (i, x + y))
            .collect();
        assert_eq!(zipped, vec![(0, 11), (1, 22), (2, 33)]);
    }

    #[test]
    fn pool_installs() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        assert_eq!(pool.install(|| crate::current_num_threads()), 1);
    }
}
