//! Offline drop-in shim for the subset of the [rayon] API this workspace
//! uses — with a **real multi-threaded runtime**.
//!
//! The build container has no crates.io access, so the real rayon cannot be
//! fetched. This crate provides the same *interface* — `par_iter`,
//! `into_par_iter`, `par_chunks(_mut)`, `par_sort_unstable*`, `join`,
//! thread-pool entry points — executed on a lazily-spawned global pool of
//! `std::thread` workers (see [`pool`]). Swapping the real rayon back in is
//! a one-line change in the workspace manifest.
//!
//! # Thread-count control
//!
//! The default worker count is, in order of precedence:
//! 1. the `JULIENNE_NUM_THREADS` environment variable (read once, at pool
//!    initialization),
//! 2. [`std::thread::available_parallelism`],
//! clamped to `1..=`[`pool::MAX_THREADS`]. It can be changed at runtime
//! with [`set_num_threads`] (the hook behind
//! `julienne::EngineBuilder::num_threads`), and overridden for a scope with
//! [`ThreadPool::install`], which the bench harness uses for its
//! 1/2/4/8-thread sweeps. [`current_num_threads`] reports the effective
//! value for the calling thread.
//!
//! # Determinism
//!
//! Unlike upstream rayon, every operation here is **bit-deterministic
//! across thread counts**: work is cut into pieces whose count and
//! boundaries are a pure function of the input length (never of the thread
//! count), and per-piece partial results are combined in piece order on the
//! calling thread. In particular floating-point reductions (`sum`,
//! `reduce`) associate identically at 1 and N threads, and the parallel
//! sorts produce identical permutations. Running the same program twice at
//! different `JULIENNE_NUM_THREADS` values therefore yields byte-identical
//! output (given the usual caveat that user closures must not themselves
//! race: side effects still need the atomics / disjoint-write protocols the
//! workspace already uses).
//!
//! # Schedule chaos
//!
//! `JULIENNE_CHAOS_SEED=<u64>` (or [`set_chaos_seed`]) turns on a seeded
//! adversarial scheduler that permutes piece claim order, injects
//! yields/sleeps, and stalls workers — while the determinism contract
//! requires outputs to stay bit-identical. See [`pool`] and
//! `tests/chaos_determinism.rs` at the workspace root.
//!
//! [rayon]: https://docs.rs/rayon

// Shim code mirrors the upstream API surface, not clippy idiom.
#![allow(clippy::all)]

pub mod iter;
pub mod pool;
pub mod slice;

pub mod prelude {
    //! Mirrors `rayon::prelude`: glob-import to get the `par_*` methods.
    pub use crate::iter::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator,
        IntoParallelRefMutIterator, ParIter, ParallelIterator,
    };
    pub use crate::slice::{ParallelSlice, ParallelSliceMut};
}

pub use pool::{chaos_seed, current_num_threads, set_chaos_seed, set_num_threads};

use std::sync::Mutex;

/// Runs both closures, potentially in parallel, and returns their results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let a_cell = Mutex::new(Some(a));
    let b_cell = Mutex::new(Some(b));
    let ra = Mutex::new(None);
    let rb = Mutex::new(None);
    pool::run_pieces(2, |i| {
        if i == 0 {
            let f = a_cell.lock().unwrap().take().expect("side A ran twice");
            *ra.lock().unwrap() = Some(f());
        } else {
            let f = b_cell.lock().unwrap().take().expect("side B ran twice");
            *rb.lock().unwrap() = Some(f());
        }
    });
    (
        ra.into_inner().unwrap().expect("side A produced no result"),
        rb.into_inner().unwrap().expect("side B produced no result"),
    )
}

/// Error type for [`ThreadPoolBuilder::build`]; never actually produced.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error (unreachable in the shim)")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A handle standing in for a rayon thread pool. The shim has one global
/// worker pool; a `ThreadPool` is a *thread-count cap* applied to whatever
/// runs inside [`install`](ThreadPool::install).
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Runs `f` with this pool's thread count as the effective cap for
    /// parallel operations submitted by `f` on this thread.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let n = if self.threads == 0 {
            // "Default" pool: no override, use the process-wide setting.
            pool::current_num_threads()
        } else {
            self.threads
        };
        pool::with_thread_cap(n, f)
    }

    /// The thread count this pool was configured with.
    pub fn current_num_threads(&self) -> usize {
        if self.threads == 0 {
            pool::current_num_threads()
        } else {
            self.threads
        }
    }
}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker count (`0` = the process-wide default).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    /// Builds the pool handle. Infallible in the shim.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            threads: self.threads,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_chain_matches_sequential() {
        let xs = vec![1u32, 2, 3, 4, 5];
        let doubled: Vec<u32> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8, 10]);
        let sum: u32 = xs.par_iter().copied().sum();
        assert_eq!(sum, 15);
    }

    #[test]
    fn into_par_iter_over_range() {
        let squares: Vec<usize> = (0..5usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares, vec![0, 1, 4, 9, 16]);
    }

    #[test]
    fn reduce_with_identity() {
        let m = (0..10u64).into_par_iter().reduce(|| u64::MAX, u64::min);
        assert_eq!(m, 0);
        let empty = (0..0u64).into_par_iter().reduce(|| 7, u64::min);
        assert_eq!(empty, 7);
    }

    #[test]
    fn par_sort_and_chunks() {
        let mut xs = vec![5u32, 1, 4, 2, 3];
        xs.par_sort_unstable();
        assert_eq!(xs, vec![1, 2, 3, 4, 5]);
        let mut pairs = vec![(2, 'b'), (1, 'a'), (3, 'c')];
        pairs.par_sort_unstable_by_key(|p| p.0);
        assert_eq!(pairs, vec![(1, 'a'), (2, 'b'), (3, 'c')]);
        let sums: Vec<u32> = xs.par_chunks(2).map(|c| c.iter().sum()).collect();
        assert_eq!(sums, vec![3, 7, 5]);
    }

    #[test]
    fn zip_and_enumerate() {
        let a = vec![1, 2, 3];
        let b = vec![10, 20, 30];
        let zipped: Vec<(usize, i32)> = a
            .par_iter()
            .zip(b.par_iter())
            .enumerate()
            .map(|(i, (&x, &y))| (i, x + y))
            .collect();
        assert_eq!(zipped, vec![(0, 11), (1, 22), (2, 33)]);
    }

    #[test]
    fn pool_installs_scope_the_thread_count() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        assert_eq!(pool.install(|| crate::current_num_threads()), 4);
        let single = crate::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        assert_eq!(single.install(|| crate::current_num_threads()), 1);
    }

    #[test]
    fn join_runs_both_sides() {
        let (a, b) = crate::join(|| 2 + 2, || "ok".len());
        assert_eq!((a, b), (4, 2));
    }

    #[test]
    fn large_par_iter_uses_many_pieces_consistently() {
        // Large enough to fan out; results must match sequential exactly.
        let n = 100_000usize;
        let expected: u64 = (0..n as u64).map(|i| i * 3).sum();
        for threads in [1, 2, 4, 8] {
            let pool = crate::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let got: u64 = pool.install(|| (0..n as u64).into_par_iter().map(|i| i * 3).sum());
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn float_sum_is_bit_identical_across_thread_counts() {
        let xs: Vec<f64> = (0..50_000).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let reference: f64 = {
            let pool = crate::ThreadPoolBuilder::new()
                .num_threads(1)
                .build()
                .unwrap();
            pool.install(|| xs.par_iter().sum())
        };
        for threads in [2, 4, 8] {
            let pool = crate::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let got: f64 = pool.install(|| xs.par_iter().sum());
            assert_eq!(got.to_bits(), reference.to_bits(), "threads = {threads}");
        }
    }

    #[test]
    fn par_sort_large_matches_std_sort() {
        let mut rng = 0x9e3779b97f4a7c15u64;
        let mut xs: Vec<u64> = (0..100_000)
            .map(|_| {
                rng ^= rng << 13;
                rng ^= rng >> 7;
                rng ^= rng << 17;
                rng
            })
            .collect();
        let mut expected = xs.clone();
        expected.sort_unstable();
        xs.par_sort_unstable();
        assert_eq!(xs, expected);
    }

    #[test]
    fn par_sort_is_stable_for_equal_keys() {
        // Stable sort: payloads of equal keys keep their original order.
        let mut xs: Vec<(u32, usize)> = (0..40_000).map(|i| ((i % 7) as u32, i)).collect();
        let mut expected = xs.clone();
        expected.sort_by_key(|&(k, _)| k);
        xs.par_sort_by_key(|&(k, _)| k);
        assert_eq!(xs, expected);
    }

    #[test]
    fn owned_vec_into_par_iter_filters() {
        let xs: Vec<u32> = (0..10_000).collect();
        let evens: Vec<u32> = xs.into_par_iter().filter(|x| x % 2 == 0).collect();
        assert_eq!(evens.len(), 5_000);
        assert!(evens.windows(2).all(|w| w[0] < w[1]));
    }
}
