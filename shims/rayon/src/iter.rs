//! The "parallel" iterator: a thin wrapper over a lazy sequential iterator
//! exposing rayon's method names (including the rayon-specific signatures
//! like two-argument `reduce`).

/// Wrapper marking an iterator as a (shim) parallel iterator.
///
/// Deliberately does *not* implement [`Iterator`] directly, so rayon-shaped
/// combinators (`reduce(identity, op)`, `fold(identity, op)`,
/// `with_min_len`, …) never collide with the std trait methods of the same
/// name.
pub struct ParIter<I>(I);

impl<I: Iterator> ParIter<I> {
    /// Wraps a sequential iterator.
    pub fn from_iter(inner: I) -> Self {
        ParIter(inner)
    }

    /// Unwraps back to the sequential iterator.
    pub fn into_inner(self) -> I {
        self.0
    }
}

/// Conversion into a (shim) parallel iterator — blanket over everything
/// that is sequentially iterable, which mirrors every `IntoParallelIterator`
/// impl rayon provides for owned collections, ranges and references.
pub trait IntoParallelIterator {
    /// Element type.
    type Item;
    /// Underlying sequential iterator.
    type Iter: Iterator<Item = Self::Item>;

    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Iter>;
}

impl<C: IntoIterator> IntoParallelIterator for C {
    type Item = C::Item;
    type Iter = C::IntoIter;

    fn into_par_iter(self) -> ParIter<C::IntoIter> {
        ParIter(self.into_iter())
    }
}

impl<I: Iterator> IntoIterator for ParIter<I> {
    type Item = I::Item;
    type IntoIter = I;

    fn into_iter(self) -> I {
        self.0
    }
}

/// `.par_iter()` — by-reference parallel iteration.
pub trait IntoParallelRefIterator<'data> {
    /// Element type (a reference).
    type Item;
    /// Underlying sequential iterator.
    type Iter: Iterator<Item = Self::Item>;

    /// Parallel iterator over `&self`.
    fn par_iter(&'data self) -> ParIter<Self::Iter>;
}

impl<'data, C: ?Sized + 'data> IntoParallelRefIterator<'data> for C
where
    &'data C: IntoIterator,
{
    type Item = <&'data C as IntoIterator>::Item;
    type Iter = <&'data C as IntoIterator>::IntoIter;

    fn par_iter(&'data self) -> ParIter<Self::Iter> {
        ParIter(self.into_iter())
    }
}

/// `.par_iter_mut()` — by-mutable-reference parallel iteration.
pub trait IntoParallelRefMutIterator<'data> {
    /// Element type (a mutable reference).
    type Item;
    /// Underlying sequential iterator.
    type Iter: Iterator<Item = Self::Item>;

    /// Parallel iterator over `&mut self`.
    fn par_iter_mut(&'data mut self) -> ParIter<Self::Iter>;
}

impl<'data, C: ?Sized + 'data> IntoParallelRefMutIterator<'data> for C
where
    &'data mut C: IntoIterator,
{
    type Item = <&'data mut C as IntoIterator>::Item;
    type Iter = <&'data mut C as IntoIterator>::IntoIter;

    fn par_iter_mut(&'data mut self) -> ParIter<Self::Iter> {
        ParIter(self.into_iter())
    }
}

impl<I: Iterator> ParIter<I> {
    /// Maps each element.
    pub fn map<R, F: FnMut(I::Item) -> R>(self, f: F) -> ParIter<std::iter::Map<I, F>> {
        ParIter(self.0.map(f))
    }

    /// Keeps elements satisfying `pred`.
    pub fn filter<F: FnMut(&I::Item) -> bool>(self, pred: F) -> ParIter<std::iter::Filter<I, F>> {
        ParIter(self.0.filter(pred))
    }

    /// Combined filter + map.
    pub fn filter_map<R, F: FnMut(I::Item) -> Option<R>>(
        self,
        f: F,
    ) -> ParIter<std::iter::FilterMap<I, F>> {
        ParIter(self.0.filter_map(f))
    }

    /// Maps each element to a *sequential* iterator and flattens (rayon's
    /// `flat_map_iter`).
    pub fn flat_map_iter<U: IntoIterator, F: FnMut(I::Item) -> U>(
        self,
        f: F,
    ) -> ParIter<std::iter::FlatMap<I, U, F>> {
        ParIter(self.0.flat_map(f))
    }

    /// Maps each element to a parallel iterator and flattens.
    pub fn flat_map<U: IntoIterator, F: FnMut(I::Item) -> U>(
        self,
        f: F,
    ) -> ParIter<std::iter::FlatMap<I, U, F>> {
        ParIter(self.0.flat_map(f))
    }

    /// Pairs elements with their index.
    pub fn enumerate(self) -> ParIter<std::iter::Enumerate<I>> {
        ParIter(self.0.enumerate())
    }

    /// Zips with another parallel-iterable.
    pub fn zip<Z: IntoParallelIterator>(self, other: Z) -> ParIter<std::iter::Zip<I, Z::Iter>> {
        ParIter(self.0.zip(other.into_par_iter().0))
    }

    /// Chains another parallel-iterable after this one.
    pub fn chain<Z: IntoParallelIterator<Item = I::Item>>(
        self,
        other: Z,
    ) -> ParIter<std::iter::Chain<I, Z::Iter>> {
        ParIter(self.0.chain(other.into_par_iter().0))
    }

    /// Takes every `step`-th element.
    pub fn step_by(self, step: usize) -> ParIter<std::iter::StepBy<I>> {
        ParIter(self.0.step_by(step))
    }

    /// Takes the first `n` elements.
    pub fn take(self, n: usize) -> ParIter<std::iter::Take<I>> {
        ParIter(self.0.take(n))
    }

    /// Skips the first `n` elements.
    pub fn skip(self, n: usize) -> ParIter<std::iter::Skip<I>> {
        ParIter(self.0.skip(n))
    }

    /// Runs `f` on each element as it passes through.
    pub fn inspect<F: FnMut(&I::Item)>(self, f: F) -> ParIter<std::iter::Inspect<I, F>> {
        ParIter(self.0.inspect(f))
    }

    /// Granularity hint; a no-op in the shim.
    pub fn with_min_len(self, _min: usize) -> Self {
        self
    }

    /// Granularity hint; a no-op in the shim.
    pub fn with_max_len(self, _max: usize) -> Self {
        self
    }

    /// Applies `f` to every element.
    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.0.for_each(f)
    }

    /// Applies `f` to every element with a per-"thread" init value.
    pub fn for_each_with<T, F: FnMut(&mut T, I::Item)>(self, mut init: T, mut f: F) {
        self.0.for_each(|x| f(&mut init, x));
    }

    /// Collects into any [`FromIterator`] collection.
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }

    /// Sums the elements.
    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.0.sum()
    }

    /// Counts the elements.
    pub fn count(self) -> usize {
        self.0.count()
    }

    /// Maximum element, if any.
    pub fn max(self) -> Option<I::Item>
    where
        I::Item: Ord,
    {
        self.0.max()
    }

    /// Minimum element, if any.
    pub fn min(self) -> Option<I::Item>
    where
        I::Item: Ord,
    {
        self.0.min()
    }

    /// Maximum by a key function.
    pub fn max_by_key<K: Ord, F: FnMut(&I::Item) -> K>(self, f: F) -> Option<I::Item> {
        self.0.max_by_key(f)
    }

    /// Minimum by a key function.
    pub fn min_by_key<K: Ord, F: FnMut(&I::Item) -> K>(self, f: F) -> Option<I::Item> {
        self.0.min_by_key(f)
    }

    /// Whether all elements satisfy `pred`.
    pub fn all<F: FnMut(I::Item) -> bool>(mut self, mut pred: F) -> bool {
        self.0.all(|x| pred(x))
    }

    /// Whether any element satisfies `pred`.
    pub fn any<F: FnMut(I::Item) -> bool>(mut self, mut pred: F) -> bool {
        self.0.any(|x| pred(x))
    }

    /// First element satisfying `pred` (rayon: *some* matching element).
    pub fn find_any<F: FnMut(&I::Item) -> bool>(self, pred: F) -> Option<I::Item> {
        let mut it = self.0;
        it.find(pred)
    }

    /// Rayon-style reduction: `identity()` seeds, `op` folds. With the
    /// sequential shim this is a plain left fold, which agrees with rayon
    /// whenever `op` is associative with identity `identity()` — the
    /// contract rayon itself requires.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
    where
        ID: Fn() -> I::Item,
        OP: Fn(I::Item, I::Item) -> I::Item,
    {
        self.0.fold(identity(), op)
    }

    /// Rayon-style fold: produces the per-split partial accumulations (a
    /// single one here) as a new parallel iterator.
    pub fn fold<T, ID, F>(self, identity: ID, fold_op: F) -> ParIter<std::iter::Once<T>>
    where
        ID: Fn() -> T,
        F: FnMut(T, I::Item) -> T,
    {
        ParIter(std::iter::once(self.0.fold(identity(), fold_op)))
    }
}

impl<'a, I, T> ParIter<I>
where
    I: Iterator<Item = &'a T>,
    T: 'a + Copy,
{
    /// Copies out of references.
    pub fn copied(self) -> ParIter<std::iter::Copied<I>> {
        ParIter(self.0.copied())
    }
}

impl<'a, I, T> ParIter<I>
where
    I: Iterator<Item = &'a T>,
    T: 'a + Clone,
{
    /// Clones out of references.
    pub fn cloned(self) -> ParIter<std::iter::Cloned<I>> {
        ParIter(self.0.cloned())
    }
}
