//! Parallel iterators over splittable sources.
//!
//! The design mirrors rayon's producer/consumer split, specialised to the
//! piece scheduler in [`crate::pool`]:
//!
//! * A [`Producer`] is a splittable description of a data source (a range,
//!   a slice, an owned `Vec`, chunk views, zips, …). `drive` cuts one
//!   into [`pool::piece_count`] pieces at deterministic boundaries and
//!   fans the pieces out over the worker pool.
//! * A [`Consumer`] folds one piece's sequential iterator into a partial
//!   result. Adapters (`map`, `filter`, …) never materialise anything:
//!   they wrap the downstream consumer so the composed pipeline runs
//!   fused, once, over each piece.
//! * Terminal operations combine the per-piece partial results **in piece
//!   order** on the calling thread. Piece boundaries depend only on input
//!   length — never on the thread count — so every terminal result is
//!   bit-identical no matter how many workers run (including
//!   floating-point reductions, whose association is fixed by the piece
//!   structure).
//!
//! The public entry points are [`IntoParallelIterator`] (`into_par_iter`),
//! [`IntoParallelRefIterator`] (`par_iter`),
//! [`IntoParallelRefMutIterator`] (`par_iter_mut`) and the slice methods
//! in [`slice`](crate::slice); all hand back a [`ParIter`] whose adapter
//! and terminal methods come from [`ParallelIterator`].

use crate::pool;
use std::marker::PhantomData;
use std::ops::Range;
use std::sync::Mutex;

// ---------------------------------------------------------------------------
// Producer: a splittable source.
// ---------------------------------------------------------------------------

/// A splittable, exactly-sized description of a data source.
pub trait Producer: Sized + Send {
    /// Element type produced.
    type Item: Send;
    /// Sequential iterator over one piece.
    type IntoIter: Iterator<Item = Self::Item>;

    /// Remaining element count.
    fn len(&self) -> usize;
    /// Splits into `[0, index)` and `[index, len)`.
    fn split_at(self, index: usize) -> (Self, Self);
    /// Degenerates into a sequential iterator.
    fn into_seq(self) -> Self::IntoIter;
}

/// A consumer folds one piece's sequential iterator into a partial result.
pub trait Consumer<T>: Sync {
    /// Per-piece partial result.
    type Result: Send;
    /// Folds a piece.
    fn consume<I: Iterator<Item = T>>(&self, iter: I) -> Self::Result;
}

/// Splits `producer` into `k` pieces at [`pool::piece_bounds`] boundaries.
/// Splitting proceeds right-to-left so producers whose `split_at` copies the
/// tail (the owned-`Vec` producer) move each element at most once.
fn split_pieces<P: Producer>(producer: P, k: usize, len: usize) -> Vec<P> {
    let mut pieces: Vec<P> = Vec::with_capacity(k);
    let mut rest = producer;
    for i in (1..k).rev() {
        let (start, _) = pool::piece_bounds(len, k, i);
        let (head, tail) = rest.split_at(start);
        pieces.push(tail);
        rest = head;
    }
    pieces.push(rest);
    pieces.reverse();
    pieces
}

/// Runs `consumer` over every piece of `producer` on the pool and returns
/// the per-piece partial results in piece order.
pub(crate) fn drive<P: Producer, C: Consumer<P::Item>>(
    producer: P,
    consumer: &C,
) -> Vec<C::Result> {
    let len = producer.len();
    let k = pool::piece_count(len);
    if k <= 1 {
        return vec![consumer.consume(producer.into_seq())];
    }
    let pieces: Vec<Mutex<Option<P>>> = split_pieces(producer, k, len)
        .into_iter()
        .map(|p| Mutex::new(Some(p)))
        .collect();
    let results: Vec<Mutex<Option<C::Result>>> = (0..k).map(|_| Mutex::new(None)).collect();
    pool::run_pieces(k, |i| {
        // Chaos hook: perturb when this piece's consumer starts, on top of
        // the pool-level claim reordering (no-op when chaos is off).
        pool::chaos_piece_pause(i);
        let piece = pieces[i]
            .lock()
            .unwrap()
            .take()
            .expect("piece claimed twice");
        let r = consumer.consume(piece.into_seq());
        *results[i].lock().unwrap() = Some(r);
    });
    results
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("piece result missing"))
        .collect()
}

// ---------------------------------------------------------------------------
// The parallel-iterator trait: adapters + terminals.
// ---------------------------------------------------------------------------

/// A parallel iterator: something that can push its elements through a
/// [`Consumer`] piece-by-piece on the worker pool.
pub trait ParallelIterator: Sized + Send {
    /// Element type.
    type Item: Send;

    /// Feeds every piece through `consumer`; returns partial results in
    /// piece order.
    fn drive<C: Consumer<Self::Item>>(self, consumer: &C) -> Vec<C::Result>;

    // ---- adapters -------------------------------------------------------

    /// Maps each element.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        Map { base: self, f }
    }

    /// Keeps elements satisfying `pred`.
    fn filter<F>(self, pred: F) -> Filter<Self, F>
    where
        F: Fn(&Self::Item) -> bool + Sync + Send,
    {
        Filter { base: self, pred }
    }

    /// Combined filter + map.
    fn filter_map<R, F>(self, f: F) -> FilterMap<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> Option<R> + Sync + Send,
    {
        FilterMap { base: self, f }
    }

    /// Maps each element to a *sequential* iterator and flattens (rayon's
    /// `flat_map_iter`).
    fn flat_map_iter<U, F>(self, f: F) -> FlatMapIter<Self, F>
    where
        U: IntoIterator,
        U::Item: Send,
        F: Fn(Self::Item) -> U + Sync + Send,
    {
        FlatMapIter { base: self, f }
    }

    /// Copies out of references.
    fn copied<'a, T>(self) -> Copied<Self>
    where
        Self: ParallelIterator<Item = &'a T>,
        T: 'a + Copy + Send + Sync,
    {
        Copied { base: self }
    }

    /// Clones out of references.
    fn cloned<'a, T>(self) -> Cloned<Self>
    where
        Self: ParallelIterator<Item = &'a T>,
        T: 'a + Clone + Send + Sync,
    {
        Cloned { base: self }
    }

    /// Granularity hint; piece sizing is fixed in this shim, so a no-op.
    fn with_min_len(self, _min: usize) -> Self {
        self
    }

    /// Granularity hint; piece sizing is fixed in this shim, so a no-op.
    fn with_max_len(self, _max: usize) -> Self {
        self
    }

    // ---- terminals ------------------------------------------------------

    /// Applies `f` to every element.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        self.drive(&ForEachConsumer { f });
    }

    /// Collects into a collection (only `Vec` in this shim; pieces are
    /// concatenated in piece order).
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }

    /// Sums the elements (per piece, then across pieces in piece order).
    fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<Self::Item> + std::iter::Sum<S>,
    {
        self.drive(&SumConsumer::<S>(PhantomData)).into_iter().sum()
    }

    /// Counts the elements.
    fn count(self) -> usize {
        self.drive(&CountConsumer).into_iter().sum()
    }

    /// Maximum element, if any.
    fn max(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        self.drive(&MaxConsumer).into_iter().flatten().max()
    }

    /// Minimum element, if any.
    fn min(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        self.drive(&MinConsumer).into_iter().flatten().min()
    }

    /// Whether all elements satisfy `pred` (no short-circuit guarantee).
    fn all<F>(self, pred: F) -> bool
    where
        F: Fn(Self::Item) -> bool + Sync + Send,
    {
        self.drive(&AllConsumer { pred }).into_iter().all(|b| b)
    }

    /// Whether any element satisfies `pred` (no short-circuit guarantee).
    fn any<F>(self, pred: F) -> bool
    where
        F: Fn(Self::Item) -> bool + Sync + Send,
    {
        self.drive(&AnyConsumer { pred }).into_iter().any(|b| b)
    }

    /// Some element satisfying `pred`, if any (first match in piece order
    /// here, which makes it deterministic across thread counts).
    fn find_any<F>(self, pred: F) -> Option<Self::Item>
    where
        F: Fn(&Self::Item) -> bool + Sync + Send,
    {
        self.drive(&FindConsumer { pred })
            .into_iter()
            .flatten()
            .next()
    }

    /// Rayon-style reduction: `identity()` seeds every piece, `op` folds
    /// within and then across pieces in piece order. Deterministic across
    /// thread counts because the piece structure is fixed by input length.
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Sync + Send,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync + Send,
    {
        let parts = self.drive(&ReduceConsumer {
            identity: &identity,
            op: &op,
        });
        parts.into_iter().fold(identity(), &op)
    }
}

/// Conversion into a parallel iterator (owned sources: ranges, `Vec`).
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// The resulting parallel iterator.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// `.par_iter()` — by-shared-reference parallel iteration.
pub trait IntoParallelRefIterator<'data> {
    /// Element type (a reference).
    type Item: Send + 'data;
    /// The resulting parallel iterator.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Parallel iterator over `&self`.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, C: 'data + ?Sized> IntoParallelRefIterator<'data> for C
where
    &'data C: IntoParallelIterator,
{
    type Item = <&'data C as IntoParallelIterator>::Item;
    type Iter = <&'data C as IntoParallelIterator>::Iter;

    fn par_iter(&'data self) -> Self::Iter {
        self.into_par_iter()
    }
}

/// `.par_iter_mut()` — by-mutable-reference parallel iteration.
pub trait IntoParallelRefMutIterator<'data> {
    /// Element type (a mutable reference).
    type Item: Send + 'data;
    /// The resulting parallel iterator.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Parallel iterator over `&mut self`.
    fn par_iter_mut(&'data mut self) -> Self::Iter;
}

impl<'data, C: 'data + ?Sized> IntoParallelRefMutIterator<'data> for C
where
    &'data mut C: IntoParallelIterator,
{
    type Item = <&'data mut C as IntoParallelIterator>::Item;
    type Iter = <&'data mut C as IntoParallelIterator>::Iter;

    fn par_iter_mut(&'data mut self) -> Self::Iter {
        self.into_par_iter()
    }
}

/// Collections buildable from a parallel iterator.
pub trait FromParallelIterator<T: Send> {
    /// Builds the collection.
    fn from_par_iter<P: ParallelIterator<Item = T>>(par: P) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<P: ParallelIterator<Item = T>>(par: P) -> Self {
        let parts = par.drive(&CollectConsumer);
        let total: usize = parts.iter().map(Vec::len).sum();
        let mut out = Vec::with_capacity(total);
        for p in parts {
            out.extend(p);
        }
        out
    }
}

// ---------------------------------------------------------------------------
// The source iterator: a producer with index-preserving combinators.
// ---------------------------------------------------------------------------

/// A source parallel iterator directly backed by a [`Producer`]. Unlike the
/// adapter types it still knows element *positions*, so `zip` and
/// `enumerate` live here (rayon's "indexed" iterators).
pub struct ParIter<P: Producer>(pub(crate) P);

impl<P: Producer> ParallelIterator for ParIter<P> {
    type Item = P::Item;

    fn drive<C: Consumer<P::Item>>(self, consumer: &C) -> Vec<C::Result> {
        drive(self.0, consumer)
    }
}

impl<P: Producer> ParIter<P> {
    /// Zips element-wise with another source iterator (stops at the shorter).
    pub fn zip<Q: Producer>(self, other: ParIter<Q>) -> ParIter<ZipProducer<P, Q>> {
        ParIter(ZipProducer {
            a: self.0,
            b: other.0,
        })
    }

    /// Pairs elements with their global index.
    pub fn enumerate(self) -> ParIter<EnumerateProducer<P>> {
        ParIter(EnumerateProducer {
            base: self.0,
            offset: 0,
        })
    }
}

// ---------------------------------------------------------------------------
// Adapter types.
// ---------------------------------------------------------------------------

/// See [`ParallelIterator::map`].
pub struct Map<B, F> {
    base: B,
    f: F,
}

struct MapConsumer<'c, F, C: ?Sized> {
    f: F,
    inner: &'c C,
}

impl<T, R, F, C> Consumer<T> for MapConsumer<'_, F, C>
where
    F: Fn(T) -> R + Sync,
    C: Consumer<R>,
{
    type Result = C::Result;

    fn consume<I: Iterator<Item = T>>(&self, iter: I) -> C::Result {
        self.inner.consume(iter.map(|x| (self.f)(x)))
    }
}

impl<B, R, F> ParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    R: Send,
    F: Fn(B::Item) -> R + Sync + Send,
{
    type Item = R;

    fn drive<C: Consumer<R>>(self, consumer: &C) -> Vec<C::Result> {
        self.base.drive(&MapConsumer {
            f: self.f,
            inner: consumer,
        })
    }
}

/// See [`ParallelIterator::filter`].
pub struct Filter<B, F> {
    base: B,
    pred: F,
}

struct FilterConsumer<'c, F, C: ?Sized> {
    pred: F,
    inner: &'c C,
}

impl<T, F, C> Consumer<T> for FilterConsumer<'_, F, C>
where
    F: Fn(&T) -> bool + Sync,
    C: Consumer<T>,
{
    type Result = C::Result;

    fn consume<I: Iterator<Item = T>>(&self, iter: I) -> C::Result {
        self.inner.consume(iter.filter(|x| (self.pred)(x)))
    }
}

impl<B, F> ParallelIterator for Filter<B, F>
where
    B: ParallelIterator,
    F: Fn(&B::Item) -> bool + Sync + Send,
{
    type Item = B::Item;

    fn drive<C: Consumer<B::Item>>(self, consumer: &C) -> Vec<C::Result> {
        self.base.drive(&FilterConsumer {
            pred: self.pred,
            inner: consumer,
        })
    }
}

/// See [`ParallelIterator::filter_map`].
pub struct FilterMap<B, F> {
    base: B,
    f: F,
}

struct FilterMapConsumer<'c, F, C: ?Sized> {
    f: F,
    inner: &'c C,
}

impl<T, R, F, C> Consumer<T> for FilterMapConsumer<'_, F, C>
where
    F: Fn(T) -> Option<R> + Sync,
    C: Consumer<R>,
{
    type Result = C::Result;

    fn consume<I: Iterator<Item = T>>(&self, iter: I) -> C::Result {
        self.inner.consume(iter.filter_map(|x| (self.f)(x)))
    }
}

impl<B, R, F> ParallelIterator for FilterMap<B, F>
where
    B: ParallelIterator,
    R: Send,
    F: Fn(B::Item) -> Option<R> + Sync + Send,
{
    type Item = R;

    fn drive<C: Consumer<R>>(self, consumer: &C) -> Vec<C::Result> {
        self.base.drive(&FilterMapConsumer {
            f: self.f,
            inner: consumer,
        })
    }
}

/// See [`ParallelIterator::flat_map_iter`].
pub struct FlatMapIter<B, F> {
    base: B,
    f: F,
}

struct FlatMapIterConsumer<'c, F, C: ?Sized> {
    f: F,
    inner: &'c C,
}

impl<T, U, F, C> Consumer<T> for FlatMapIterConsumer<'_, F, C>
where
    U: IntoIterator,
    F: Fn(T) -> U + Sync,
    C: Consumer<U::Item>,
{
    type Result = C::Result;

    fn consume<I: Iterator<Item = T>>(&self, iter: I) -> C::Result {
        self.inner.consume(iter.flat_map(|x| (self.f)(x)))
    }
}

impl<B, U, F> ParallelIterator for FlatMapIter<B, F>
where
    B: ParallelIterator,
    U: IntoIterator,
    U::Item: Send,
    F: Fn(B::Item) -> U + Sync + Send,
{
    type Item = U::Item;

    fn drive<C: Consumer<U::Item>>(self, consumer: &C) -> Vec<C::Result> {
        self.base.drive(&FlatMapIterConsumer {
            f: self.f,
            inner: consumer,
        })
    }
}

/// See [`ParallelIterator::copied`].
pub struct Copied<B> {
    base: B,
}

struct CopiedConsumer<'c, C: ?Sized> {
    inner: &'c C,
}

impl<'a, T, C> Consumer<&'a T> for CopiedConsumer<'_, C>
where
    T: 'a + Copy + Send,
    C: Consumer<T>,
{
    type Result = C::Result;

    fn consume<I: Iterator<Item = &'a T>>(&self, iter: I) -> C::Result {
        self.inner.consume(iter.copied())
    }
}

impl<'a, T, B> ParallelIterator for Copied<B>
where
    T: 'a + Copy + Send + Sync,
    B: ParallelIterator<Item = &'a T>,
{
    type Item = T;

    fn drive<C: Consumer<T>>(self, consumer: &C) -> Vec<C::Result> {
        self.base.drive(&CopiedConsumer { inner: consumer })
    }
}

/// See [`ParallelIterator::cloned`].
pub struct Cloned<B> {
    base: B,
}

struct ClonedConsumer<'c, C: ?Sized> {
    inner: &'c C,
}

impl<'a, T, C> Consumer<&'a T> for ClonedConsumer<'_, C>
where
    T: 'a + Clone + Send,
    C: Consumer<T>,
{
    type Result = C::Result;

    fn consume<I: Iterator<Item = &'a T>>(&self, iter: I) -> C::Result {
        self.inner.consume(iter.cloned())
    }
}

impl<'a, T, B> ParallelIterator for Cloned<B>
where
    T: 'a + Clone + Send + Sync,
    B: ParallelIterator<Item = &'a T>,
{
    type Item = T;

    fn drive<C: Consumer<T>>(self, consumer: &C) -> Vec<C::Result> {
        self.base.drive(&ClonedConsumer { inner: consumer })
    }
}

// ---------------------------------------------------------------------------
// Terminal consumers.
// ---------------------------------------------------------------------------

struct ForEachConsumer<F> {
    f: F,
}

impl<T, F: Fn(T) + Sync> Consumer<T> for ForEachConsumer<F> {
    type Result = ();

    fn consume<I: Iterator<Item = T>>(&self, iter: I) {
        for x in iter {
            (self.f)(x);
        }
    }
}

struct CollectConsumer;

impl<T: Send> Consumer<T> for CollectConsumer {
    type Result = Vec<T>;

    fn consume<I: Iterator<Item = T>>(&self, iter: I) -> Vec<T> {
        iter.collect()
    }
}

struct SumConsumer<S>(PhantomData<fn() -> S>);

impl<T, S: Send + std::iter::Sum<T>> Consumer<T> for SumConsumer<S> {
    type Result = S;

    fn consume<I: Iterator<Item = T>>(&self, iter: I) -> S {
        iter.sum()
    }
}

struct CountConsumer;

impl<T> Consumer<T> for CountConsumer {
    type Result = usize;

    fn consume<I: Iterator<Item = T>>(&self, iter: I) -> usize {
        iter.count()
    }
}

struct MaxConsumer;

impl<T: Ord + Send> Consumer<T> for MaxConsumer {
    type Result = Option<T>;

    fn consume<I: Iterator<Item = T>>(&self, iter: I) -> Option<T> {
        iter.max()
    }
}

struct MinConsumer;

impl<T: Ord + Send> Consumer<T> for MinConsumer {
    type Result = Option<T>;

    fn consume<I: Iterator<Item = T>>(&self, iter: I) -> Option<T> {
        iter.min()
    }
}

struct AllConsumer<F> {
    pred: F,
}

impl<T, F: Fn(T) -> bool + Sync> Consumer<T> for AllConsumer<F> {
    type Result = bool;

    fn consume<I: Iterator<Item = T>>(&self, mut iter: I) -> bool {
        iter.all(|x| (self.pred)(x))
    }
}

struct AnyConsumer<F> {
    pred: F,
}

impl<T, F: Fn(T) -> bool + Sync> Consumer<T> for AnyConsumer<F> {
    type Result = bool;

    fn consume<I: Iterator<Item = T>>(&self, mut iter: I) -> bool {
        iter.any(|x| (self.pred)(x))
    }
}

struct FindConsumer<F> {
    pred: F,
}

impl<T: Send, F: Fn(&T) -> bool + Sync> Consumer<T> for FindConsumer<F> {
    type Result = Option<T>;

    fn consume<I: Iterator<Item = T>>(&self, mut iter: I) -> Option<T> {
        iter.find(|x| (self.pred)(x))
    }
}

struct ReduceConsumer<'o, ID, OP> {
    identity: &'o ID,
    op: &'o OP,
}

impl<T, ID, OP> Consumer<T> for ReduceConsumer<'_, ID, OP>
where
    T: Send,
    ID: Fn() -> T + Sync,
    OP: Fn(T, T) -> T + Sync,
{
    type Result = T;

    fn consume<I: Iterator<Item = T>>(&self, iter: I) -> T {
        iter.fold((self.identity)(), |a, b| (self.op)(a, b))
    }
}

// ---------------------------------------------------------------------------
// Producers.
// ---------------------------------------------------------------------------

/// Producer over an integer range.
pub struct RangeProducer<T> {
    range: Range<T>,
}

macro_rules! range_producer {
    ($($t:ty),*) => {$(
        impl Producer for RangeProducer<$t> {
            type Item = $t;
            type IntoIter = Range<$t>;

            fn len(&self) -> usize {
                if self.range.end > self.range.start {
                    (self.range.end - self.range.start) as usize
                } else {
                    0
                }
            }

            fn split_at(self, index: usize) -> (Self, Self) {
                let mid = self.range.start + index as $t;
                (
                    RangeProducer { range: self.range.start..mid },
                    RangeProducer { range: mid..self.range.end },
                )
            }

            fn into_seq(self) -> Range<$t> {
                self.range
            }
        }

        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            type Iter = ParIter<RangeProducer<$t>>;

            fn into_par_iter(self) -> Self::Iter {
                ParIter(RangeProducer { range: self })
            }
        }
    )*};
}

range_producer!(u32, u64, usize, i32, i64);

/// Producer over `&[T]`.
pub struct SliceProducer<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> Producer for SliceProducer<'a, T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.slice.split_at(index);
        (SliceProducer { slice: a }, SliceProducer { slice: b })
    }

    fn into_seq(self) -> Self::IntoIter {
        self.slice.iter()
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    type Iter = ParIter<SliceProducer<'a, T>>;

    fn into_par_iter(self) -> Self::Iter {
        ParIter(SliceProducer { slice: self })
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Item = &'a T;
    type Iter = ParIter<SliceProducer<'a, T>>;

    fn into_par_iter(self) -> Self::Iter {
        ParIter(SliceProducer { slice: self })
    }
}

/// Producer over `&mut [T]`.
pub struct SliceMutProducer<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> Producer for SliceMutProducer<'a, T> {
    type Item = &'a mut T;
    type IntoIter = std::slice::IterMut<'a, T>;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.slice.split_at_mut(index);
        (SliceMutProducer { slice: a }, SliceMutProducer { slice: b })
    }

    fn into_seq(self) -> Self::IntoIter {
        self.slice.iter_mut()
    }
}

impl<'a, T: Send> IntoParallelIterator for &'a mut [T] {
    type Item = &'a mut T;
    type Iter = ParIter<SliceMutProducer<'a, T>>;

    fn into_par_iter(self) -> Self::Iter {
        ParIter(SliceMutProducer { slice: self })
    }
}

impl<'a, T: Send> IntoParallelIterator for &'a mut Vec<T> {
    type Item = &'a mut T;
    type Iter = ParIter<SliceMutProducer<'a, T>>;

    fn into_par_iter(self) -> Self::Iter {
        ParIter(SliceMutProducer { slice: self })
    }
}

/// Producer over an owned `Vec<T>`. `split_at` peels the tail into its own
/// allocation (`Vec::split_off`), so `drive`'s right-to-left splitting
/// moves each element at most once overall.
pub struct VecProducer<T> {
    vec: Vec<T>,
}

impl<T: Send> Producer for VecProducer<T> {
    type Item = T;
    type IntoIter = std::vec::IntoIter<T>;

    fn len(&self) -> usize {
        self.vec.len()
    }

    fn split_at(mut self, index: usize) -> (Self, Self) {
        let tail = self.vec.split_off(index);
        (self, VecProducer { vec: tail })
    }

    fn into_seq(self) -> Self::IntoIter {
        self.vec.into_iter()
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParIter<VecProducer<T>>;

    fn into_par_iter(self) -> Self::Iter {
        ParIter(VecProducer { vec: self })
    }
}

/// Producer over `slice.chunks(size)`; element unit is one chunk.
pub struct ChunksProducer<'a, T> {
    pub(crate) slice: &'a [T],
    pub(crate) size: usize,
}

impl<'a, T: Sync> Producer for ChunksProducer<'a, T> {
    type Item = &'a [T];
    type IntoIter = std::slice::Chunks<'a, T>;

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let mid = (index * self.size).min(self.slice.len());
        let (a, b) = self.slice.split_at(mid);
        (
            ChunksProducer {
                slice: a,
                size: self.size,
            },
            ChunksProducer {
                slice: b,
                size: self.size,
            },
        )
    }

    fn into_seq(self) -> Self::IntoIter {
        self.slice.chunks(self.size)
    }
}

/// Producer over `slice.chunks_mut(size)`; element unit is one chunk.
pub struct ChunksMutProducer<'a, T> {
    pub(crate) slice: &'a mut [T],
    pub(crate) size: usize,
}

impl<'a, T: Send> Producer for ChunksMutProducer<'a, T> {
    type Item = &'a mut [T];
    type IntoIter = std::slice::ChunksMut<'a, T>;

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let mid = (index * self.size).min(self.slice.len());
        let (a, b) = self.slice.split_at_mut(mid);
        (
            ChunksMutProducer {
                slice: a,
                size: self.size,
            },
            ChunksMutProducer {
                slice: b,
                size: self.size,
            },
        )
    }

    fn into_seq(self) -> Self::IntoIter {
        self.slice.chunks_mut(self.size)
    }
}

/// Producer over `slice.windows(size)`; element unit is one window.
pub struct WindowsProducer<'a, T> {
    pub(crate) slice: &'a [T],
    pub(crate) size: usize,
}

impl<'a, T: Sync> Producer for WindowsProducer<'a, T> {
    type Item = &'a [T];
    type IntoIter = std::slice::Windows<'a, T>;

    fn len(&self) -> usize {
        self.slice.len().saturating_sub(self.size - 1)
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        // Window i covers elements [i, i + size); the left part needs the
        // overlap up to window index - 1's last element.
        let left_end = (index + self.size - 1).min(self.slice.len());
        (
            WindowsProducer {
                slice: &self.slice[..left_end],
                size: self.size,
            },
            WindowsProducer {
                slice: &self.slice[index..],
                size: self.size,
            },
        )
    }

    fn into_seq(self) -> Self::IntoIter {
        self.slice.windows(self.size)
    }
}

/// Producer zipping two producers element-wise (length = the shorter).
pub struct ZipProducer<A, B> {
    a: A,
    b: B,
}

impl<A: Producer, B: Producer> Producer for ZipProducer<A, B> {
    type Item = (A::Item, B::Item);
    type IntoIter = std::iter::Zip<A::IntoIter, B::IntoIter>;

    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (a1, a2) = self.a.split_at(index);
        let (b1, b2) = self.b.split_at(index);
        (ZipProducer { a: a1, b: b1 }, ZipProducer { a: a2, b: b2 })
    }

    fn into_seq(self) -> Self::IntoIter {
        self.a.into_seq().zip(self.b.into_seq())
    }
}

/// Producer pairing elements with their global index.
pub struct EnumerateProducer<P> {
    base: P,
    offset: usize,
}

impl<P: Producer> Producer for EnumerateProducer<P> {
    type Item = (usize, P::Item);
    type IntoIter = EnumerateIter<P::IntoIter>;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(index);
        (
            EnumerateProducer {
                base: a,
                offset: self.offset,
            },
            EnumerateProducer {
                base: b,
                offset: self.offset + index,
            },
        )
    }

    fn into_seq(self) -> Self::IntoIter {
        EnumerateIter {
            inner: self.base.into_seq(),
            idx: self.offset,
        }
    }
}

/// Sequential iterator for [`EnumerateProducer`]: enumeration starting at a
/// piece-dependent offset.
pub struct EnumerateIter<I> {
    inner: I,
    idx: usize,
}

impl<I: Iterator> Iterator for EnumerateIter<I> {
    type Item = (usize, I::Item);

    fn next(&mut self) -> Option<(usize, I::Item)> {
        let x = self.inner.next()?;
        let i = self.idx;
        self.idx += 1;
        Some((i, x))
    }
}
