//! Parallel slice views (`par_chunks`, `par_windows`, `par_chunks_mut`) and
//! parallel sorts.
//!
//! The sorts are bottom-up parallel merge sorts: the slice is cut into
//! [`pool::piece_count`] runs at deterministic boundaries, each run is
//! sorted in place (std's `sort`/`sort_unstable`) on the pool, then
//! adjacent runs are pairwise merged — also in parallel — ping-ponging
//! between the slice and one scratch allocation until a single run remains.
//! Ties always take the left run's element, so `par_sort*` is stable and
//! `par_sort_unstable*` is deterministic as well; because run boundaries
//! depend only on the length, the result is bit-identical across thread
//! counts.
//!
//! The merge phase moves elements between buffers with raw copies. A
//! comparator that *panics* mid-merge would leave the slice with duplicated
//! and missing elements (double drops on unwind), so the merge phase runs
//! under an abort-on-unwind guard: a panicking comparator terminates the
//! process instead of corrupting memory. (std's sorts keep their own
//! panic-safety for the run-sorting phase; the guard covers merging only.)

use crate::iter::{ChunksMutProducer, ChunksProducer, ParIter, WindowsProducer};
use crate::pool;
use std::cmp::Ordering;
use std::mem::MaybeUninit;
use std::sync::Mutex;

/// Parallel operations on `&[T]`.
pub trait ParallelSlice<T: Sync> {
    /// The underlying slice.
    fn as_parallel_slice(&self) -> &[T];

    /// Parallel iterator over `size`-element chunks (last may be shorter).
    fn par_chunks(&self, size: usize) -> ParIter<ChunksProducer<'_, T>> {
        assert!(size != 0, "chunk size must be non-zero");
        ParIter(ChunksProducer {
            slice: self.as_parallel_slice(),
            size,
        })
    }

    /// Parallel iterator over overlapping `size`-element windows.
    fn par_windows(&self, size: usize) -> ParIter<WindowsProducer<'_, T>> {
        assert!(size != 0, "window size must be non-zero");
        ParIter(WindowsProducer {
            slice: self.as_parallel_slice(),
            size,
        })
    }
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn as_parallel_slice(&self) -> &[T] {
        self
    }
}

/// Parallel operations on `&mut [T]`.
pub trait ParallelSliceMut<T: Send> {
    /// The underlying slice.
    fn as_parallel_slice_mut(&mut self) -> &mut [T];

    /// Parallel iterator over mutable `size`-element chunks.
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<ChunksMutProducer<'_, T>> {
        assert!(size != 0, "chunk size must be non-zero");
        ParIter(ChunksMutProducer {
            slice: self.as_parallel_slice_mut(),
            size,
        })
    }

    /// Parallel unstable sort.
    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        par_merge_sort(self.as_parallel_slice_mut(), &Ord::cmp, false);
    }

    /// Parallel unstable sort with a comparator.
    fn par_sort_unstable_by<F>(&mut self, compare: F)
    where
        F: Fn(&T, &T) -> Ordering + Sync,
    {
        par_merge_sort(self.as_parallel_slice_mut(), &compare, false);
    }

    /// Parallel unstable sort by key.
    fn par_sort_unstable_by_key<K, F>(&mut self, key: F)
    where
        K: Ord,
        F: Fn(&T) -> K + Sync,
    {
        par_merge_sort(
            self.as_parallel_slice_mut(),
            &|a: &T, b: &T| key(a).cmp(&key(b)),
            false,
        );
    }

    /// Parallel stable sort.
    fn par_sort(&mut self)
    where
        T: Ord,
    {
        par_merge_sort(self.as_parallel_slice_mut(), &Ord::cmp, true);
    }

    /// Parallel stable sort with a comparator.
    fn par_sort_by<F>(&mut self, compare: F)
    where
        F: Fn(&T, &T) -> Ordering + Sync,
    {
        par_merge_sort(self.as_parallel_slice_mut(), &compare, true);
    }

    /// Parallel stable sort by key.
    fn par_sort_by_key<K, F>(&mut self, key: F)
    where
        K: Ord,
        F: Fn(&T) -> K + Sync,
    {
        par_merge_sort(
            self.as_parallel_slice_mut(),
            &|a: &T, b: &T| key(a).cmp(&key(b)),
            true,
        );
    }
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn as_parallel_slice_mut(&mut self) -> &mut [T] {
        self
    }
}

/// Raw pointer wrapper shareable across the pool. Soundness rests on the
/// merge plan: every worker touches disjoint index ranges of both buffers.
struct SharedPtr<T>(*mut T);
unsafe impl<T: Send> Sync for SharedPtr<T> {}

/// Aborts the process if dropped during an unwind; disarmed on success.
struct AbortOnUnwind;
impl Drop for AbortOnUnwind {
    fn drop(&mut self) {
        eprintln!("fatal: comparator panicked during a parallel merge; aborting");
        std::process::abort();
    }
}

fn par_merge_sort<T, F>(v: &mut [T], cmp: &F, stable: bool)
where
    T: Send,
    F: Fn(&T, &T) -> Ordering + Sync,
{
    let n = v.len();
    let k = pool::piece_count(n);
    if k <= 1 {
        if stable {
            v.sort_by(cmp);
        } else {
            v.sort_unstable_by(cmp);
        }
        return;
    }

    // Run boundaries: bounds[i]..bounds[i + 1] is run i.
    let mut bounds: Vec<usize> = (0..k).map(|i| pool::piece_bounds(n, k, i).0).collect();
    bounds.push(n);

    // Phase 1: sort every run in place, in parallel.
    {
        let mut runs: Vec<Mutex<Option<&mut [T]>>> = Vec::with_capacity(k);
        let mut rest: &mut [T] = v;
        let mut start = 0;
        for i in 0..k - 1 {
            let end = bounds[i + 1];
            let (run, tail) = rest.split_at_mut(end - start);
            runs.push(Mutex::new(Some(run)));
            rest = tail;
            start = end;
        }
        runs.push(Mutex::new(Some(rest)));
        pool::run_pieces(k, |i| {
            let run = runs[i].lock().unwrap().take().expect("run claimed twice");
            if stable {
                run.sort_by(cmp);
            } else {
                run.sort_unstable_by(cmp);
            }
        });
    }

    // Phase 2: pairwise merge adjacent runs, ping-ponging between `v` and
    // one scratch buffer, until a single run remains.
    let mut scratch: Vec<MaybeUninit<T>> = Vec::with_capacity(n);
    // SAFETY: MaybeUninit contents are allowed to be uninitialized.
    unsafe { scratch.set_len(n) };

    let guard = AbortOnUnwind;
    let mut src = SharedPtr(v.as_mut_ptr());
    let mut dst = SharedPtr(scratch.as_mut_ptr() as *mut T);
    let mut in_scratch = false;

    while bounds.len() > 2 {
        let runs = bounds.len() - 1;
        let pairs = runs / 2;
        let tail_run = runs % 2 == 1;
        let bounds_ref = &bounds;
        let src_ref = &src;
        let dst_ref = &dst;
        pool::run_pieces(pairs + usize::from(tail_run), |p| {
            let lo = bounds_ref[2 * p];
            if p < pairs {
                let mid = bounds_ref[2 * p + 1];
                let hi = bounds_ref[2 * p + 2];
                // SAFETY: pairs cover disjoint ranges; src holds live
                // values in [lo, hi); dst bytes in [lo, hi) are writable.
                unsafe { merge_into(src_ref.0, dst_ref.0, lo, mid, hi, cmp) };
            } else {
                let hi = bounds_ref[2 * p + 1];
                // Unpaired trailing run: carry it over verbatim.
                // SAFETY: same disjointness argument as above.
                unsafe {
                    std::ptr::copy_nonoverlapping(src_ref.0.add(lo), dst_ref.0.add(lo), hi - lo)
                };
            }
        });
        std::mem::swap(&mut src, &mut dst);
        in_scratch = !in_scratch;
        let mut next = Vec::with_capacity(pairs + 2);
        for i in (0..bounds.len()).step_by(2) {
            next.push(bounds[i]);
        }
        if *next.last().unwrap() != n {
            next.push(n);
        }
        bounds = next;
    }

    if in_scratch {
        // SAFETY: all n live values sit in scratch; move them home. After
        // the swap above, `src` is the buffer holding live data.
        unsafe { std::ptr::copy_nonoverlapping(src.0, dst.0, n) };
    }
    std::mem::forget(guard);
    // `scratch` drops as MaybeUninit: no destructors run on the stale bits.
}

/// Merges sorted `src[lo..mid]` and `src[mid..hi]` into `dst[lo..hi]`,
/// taking the left element on ties (stability).
///
/// # Safety
/// Both ranges must be valid for the respective pointer, `src[lo..hi)` must
/// hold live values, and no other thread may touch either range. After the
/// call the live values are in `dst`; the `src` bits are stale copies.
unsafe fn merge_into<T, F: Fn(&T, &T) -> Ordering>(
    src: *mut T,
    dst: *mut T,
    lo: usize,
    mid: usize,
    hi: usize,
    cmp: &F,
) {
    let mut i = lo;
    let mut j = mid;
    let mut o = lo;
    while i < mid && j < hi {
        let left_first = cmp(&*src.add(i), &*src.add(j)) != Ordering::Greater;
        if left_first {
            std::ptr::copy_nonoverlapping(src.add(i), dst.add(o), 1);
            i += 1;
        } else {
            std::ptr::copy_nonoverlapping(src.add(j), dst.add(o), 1);
            j += 1;
        }
        o += 1;
    }
    if i < mid {
        std::ptr::copy_nonoverlapping(src.add(i), dst.add(o), mid - i);
        o += mid - i;
    }
    if j < hi {
        std::ptr::copy_nonoverlapping(src.add(j), dst.add(o), hi - j);
        o += hi - j;
    }
    debug_assert_eq!(o, hi);
}
