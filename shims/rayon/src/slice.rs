//! Slice extension traits mirroring `rayon::slice`.

use crate::iter::ParIter;

/// `par_chunks` and friends on shared slices.
pub trait ParallelSlice<T> {
    /// Parallel iterator over `chunk_size`-sized chunks.
    fn par_chunks(&self, chunk_size: usize) -> ParIter<std::slice::Chunks<'_, T>>;

    /// Parallel iterator over overlapping windows.
    fn par_windows(&self, window_size: usize) -> ParIter<std::slice::Windows<'_, T>>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParIter<std::slice::Chunks<'_, T>> {
        ParIter::from_iter(self.chunks(chunk_size))
    }

    fn par_windows(&self, window_size: usize) -> ParIter<std::slice::Windows<'_, T>> {
        ParIter::from_iter(self.windows(window_size))
    }
}

/// `par_chunks_mut` / `par_sort_unstable*` on mutable slices.
pub trait ParallelSliceMut<T> {
    /// Parallel iterator over mutable `chunk_size`-sized chunks.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<std::slice::ChunksMut<'_, T>>;

    /// Unstable sort (delegates to `sort_unstable`).
    fn par_sort_unstable(&mut self)
    where
        T: Ord;

    /// Unstable sort by comparator.
    fn par_sort_unstable_by<F>(&mut self, compare: F)
    where
        F: FnMut(&T, &T) -> std::cmp::Ordering;

    /// Unstable sort by key.
    fn par_sort_unstable_by_key<K, F>(&mut self, key: F)
    where
        K: Ord,
        F: FnMut(&T) -> K;

    /// Stable sort (delegates to `sort`).
    fn par_sort(&mut self)
    where
        T: Ord;

    /// Stable sort by key.
    fn par_sort_by_key<K, F>(&mut self, key: F)
    where
        K: Ord,
        F: FnMut(&T) -> K;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<std::slice::ChunksMut<'_, T>> {
        ParIter::from_iter(self.chunks_mut(chunk_size))
    }

    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        self.sort_unstable();
    }

    fn par_sort_unstable_by<F>(&mut self, compare: F)
    where
        F: FnMut(&T, &T) -> std::cmp::Ordering,
    {
        self.sort_unstable_by(compare);
    }

    fn par_sort_unstable_by_key<K, F>(&mut self, key: F)
    where
        K: Ord,
        F: FnMut(&T) -> K,
    {
        self.sort_unstable_by_key(key);
    }

    fn par_sort(&mut self)
    where
        T: Ord,
    {
        self.sort();
    }

    fn par_sort_by_key<K, F>(&mut self, key: F)
    where
        K: Ord,
        F: FnMut(&T) -> K,
    {
        self.sort_by_key(key);
    }
}
