//! Deterministic case generator and per-case error type.

/// Per-test configuration; only `cases` is honoured by the shim.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed case. Carries only a message; the shim does not shrink.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// splitmix64 generator, seeded from the test's module path + name so every
/// test gets a distinct but fully reproducible stream.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Deterministic stream keyed on `name`.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the test name picks the stream.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[lo, hi)`; returns `lo` when the range is empty.
    pub fn gen_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        lo + self.next_u64() % (hi - lo)
    }

    /// Uniform draw from `[lo, hi)` over signed values.
    pub fn gen_range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        if hi <= lo {
            return lo;
        }
        let span = (hi as i128 - lo as i128) as u128;
        let off = (self.next_u64() as u128) % span;
        (lo as i128 + off as i128) as i64
    }
}
