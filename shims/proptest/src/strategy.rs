//! The [`Strategy`] trait and the combinators this workspace uses.

use crate::test_runner::TestRng;
use std::ops::Range;

/// A recipe for generating values. Object-safe: the combinators are gated
/// on `Sized` so `dyn Strategy<Value = T>` works (needed by `prop_oneof!`).
pub trait Strategy {
    /// Generated value type.
    type Value;

    /// Draws one value from the deterministic stream.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { base: self, f }
    }

    /// Generates a value, then generates from a strategy derived from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }

    /// Keeps only values passing `pred` (bounded retries).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            base: self,
            whence,
            pred,
        }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.f)(self.base.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn new_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.new_value(rng)).new_value(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    base: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.base.new_value(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter exhausted retries: {}", self.whence)
    }
}

/// Weighted union over same-valued strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Builds from `(weight, strategy)` arms.
    ///
    /// # Panics
    /// Panics if `arms` is empty or all weights are zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.gen_range_u64(0, self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.new_value(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted pick out of range")
    }
}

macro_rules! unsigned_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range_u64(self.start as u64, self.end as u64) as $t
            }
        }
    )*};
}

unsigned_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range_i64(self.start as i64, self.end as i64) as $t
            }
        }
    )*};
}

signed_range_strategy!(i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}
