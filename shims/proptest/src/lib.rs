//! Offline drop-in shim for the subset of [proptest] this workspace uses.
//!
//! The build container has no crates.io access, so the real proptest cannot
//! be fetched. This shim keeps the same *test-author surface* — the
//! `proptest!` macro, `Strategy` combinators (`prop_map`, `prop_flat_map`),
//! integer-range / tuple / `Just` / `prop_oneof!` strategies,
//! `prop::collection::{vec, btree_set}`, and `prop_assert*!` — backed by a
//! deterministic splitmix64 generator. Differences from the real crate:
//! cases are seeded deterministically (fully reproducible runs) and failing
//! cases are reported without shrinking.
//!
//! [proptest]: https://docs.rs/proptest

// Shim code mirrors the upstream API surface, not clippy idiom.
#![allow(clippy::all)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! Mirrors `proptest::prelude`: glob-import in tests.
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    pub mod prop {
        //! The `prop::` path tests use for collection strategies.
        pub use crate::collection;
    }
}

/// Defines property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__config.cases {
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(let $p = $crate::strategy::Strategy::new_value(&($s), &mut __rng);)+
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = __outcome {
                    panic!("proptest case {}/{} failed: {}", __case + 1, __config.cases, e);
                }
            }
        }
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not the
/// whole process) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Weighted (or unweighted) choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}
