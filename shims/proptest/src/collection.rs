//! Collection strategies: `prop::collection::{vec, btree_set}`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeSet;
use std::ops::Range;

/// Strategy for `Vec<S::Value>` with length drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range_u64(self.size.start as u64, self.size.end as u64) as usize;
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

/// A `Vec` strategy generating `size`-many elements from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

/// Strategy for `BTreeSet<S::Value>` with target size drawn from `size`.
pub struct BTreeSetStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = rng.gen_range_u64(self.size.start as u64, self.size.end as u64) as usize;
        let mut out = BTreeSet::new();
        // The element domain may be smaller than `target`; bound the retries
        // so a saturated domain degrades to a smaller set instead of hanging.
        let mut budget = target * 50 + 100;
        while out.len() < target && budget > 0 {
            out.insert(self.element.new_value(rng));
            budget -= 1;
        }
        out
    }
}

/// A `BTreeSet` strategy generating roughly `size`-many distinct elements.
pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy { element, size }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        fn vec_respects_size(xs in crate::collection::vec(any::<u32>(), 3..10)) {
            prop_assert!(xs.len() >= 3 && xs.len() < 10);
        }

        fn btree_set_is_distinct(s in crate::collection::btree_set(0u32..1000, 0..50)) {
            prop_assert!(s.len() < 50);
        }

        fn oneof_and_tuples((a, b) in (0u32..10, prop_oneof![4 => 0u32..5, 1 => Just(99u32)])) {
            prop_assert!(a < 10);
            prop_assert!(b < 5 || b == 99);
        }

        fn flat_map_chains(v in (1usize..6).prop_flat_map(|n| {
            crate::collection::vec(0u32..100, n..n + 1)
        })) {
            prop_assert!(!v.is_empty() && v.len() < 6);
        }
    }
}
