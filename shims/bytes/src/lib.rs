//! Offline drop-in shim for the subset of the [bytes] crate this workspace
//! uses: the [`Buf`] / [`BufMut`] cursor traits over `&[u8]` and `Vec<u8>`.
//!
//! The build container has no crates.io access, so the real crate cannot be
//! fetched; this shim keeps the same semantics (little-endian reads advance
//! the slice, writes append to the vector) for the binary graph formats.
//!
//! [bytes]: https://docs.rs/bytes

// Shim code mirrors the upstream API surface, not clippy idiom.
#![allow(clippy::all)]

/// Read-side cursor: getters consume from the front of the buffer.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Advances the cursor by `cnt` bytes.
    ///
    /// # Panics
    /// Panics if fewer than `cnt` bytes remain.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8;

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32;

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64;

    /// Copies `dst.len()` bytes out and advances past them.
    fn copy_to_slice(&mut self, dst: &mut [u8]);
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        *self = &self[cnt..];
    }

    fn get_u8(&mut self) -> u8 {
        let b = self[0];
        self.advance(1);
        b
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        self.copy_to_slice(&mut raw);
        u32::from_le_bytes(raw)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice(&mut raw);
        u64::from_le_bytes(raw)
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self[..dst.len()]);
        self.advance(dst.len());
    }
}

/// Write-side cursor: putters append to the back of the buffer.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32);

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64);

    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut buf: Vec<u8> = Vec::new();
        buf.put_u64_le(0xDEAD_BEEF_CAFE_F00D);
        buf.put_u32_le(42);
        buf.put_u8(7);
        buf.put_slice(b"xy");

        let mut rd: &[u8] = &buf;
        assert_eq!(rd.remaining(), 15);
        assert_eq!(rd.get_u64_le(), 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(rd.get_u32_le(), 42);
        assert_eq!(rd.get_u8(), 7);
        let mut two = [0u8; 2];
        rd.copy_to_slice(&mut two);
        assert_eq!(&two, b"xy");
        assert_eq!(rd.remaining(), 0);
    }
}
