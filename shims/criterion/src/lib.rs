//! Offline drop-in shim for the subset of [criterion] this workspace uses.
//!
//! The build container has no crates.io access, so the real criterion cannot
//! be fetched. This shim keeps the bench files compiling and runnable: each
//! `bench_function` runs the closure a small fixed number of iterations and
//! prints a mean wall-clock time. No statistics, no HTML reports.
//!
//! [criterion]: https://docs.rs/criterion

// Shim code mirrors the upstream API surface, not clippy idiom.
#![allow(clippy::all)]

use std::fmt::Display;
use std::time::Instant;

/// Opaque black box preventing the optimiser from deleting benchmark work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for a parameterised benchmark (`name/parameter`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`, as in criterion.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Bare parameter id (`from_parameter` in criterion).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Timing harness handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    last_mean_ns: f64,
}

impl Bencher {
    /// Runs `f` `self.iters` times and records the mean time.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        let total = start.elapsed();
        self.last_mean_ns = total.as_nanos() as f64 / self.iters as f64;
    }
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (used as the per-bench iteration count here).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Hint accepted for compatibility; ignored by the shim.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    fn run_one(&mut self, id: String, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            iters: self.sample_size as u64,
            last_mean_ns: 0.0,
        };
        f(&mut b);
        println!(
            "bench {}/{}: {:.1} µs/iter ({} iters)",
            self.name,
            id,
            b.last_mean_ns / 1_000.0,
            b.iters
        );
    }

    /// Runs one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        self.run_one(id.id, f);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        self.run_one(id.id, |b| f(b, input));
        self
    }

    /// Ends the group (no-op; prints are immediate).
    pub fn finish(&mut self) {}
}

/// Throughput hint; accepted and ignored.
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level benchmark context.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Creates a context with default settings.
    pub fn new() -> Self {
        Criterion {}
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
            sample_size: 10,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        let mut group = self.benchmark_group(name);
        group.bench_function(BenchmarkId::from(name), f);
        self
    }
}

/// Declares a group-runner function, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::new();
            $($target(&mut c);)+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
